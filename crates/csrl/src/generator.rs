//! Deterministic random-formula generation for round-trip testing.
//!
//! The printer promises `parse(f.to_string()) == f` for every well-formed
//! formula; exercising that promise needs a source of structurally diverse
//! ASTs. This module generates them from the workspace's in-tree
//! [`Xoshiro256StarStar`] generator, replacing the external `proptest`
//! strategy the test-suite used before the hermetic-build change: every
//! generated corpus is reproducible from a literal seed.
//!
//! Intervals are drawn on a quarter-unit grid (`k/4`) so printed bounds
//! round-trip exactly through the decimal formatter, and upper bounds are
//! infinite with probability ¼ to exercise the `~` syntax.

use mrmc_sparse::rng::Xoshiro256StarStar;

use crate::ast::{CompareOp, PathFormula, StateFormula};
use crate::interval::Interval;

/// A random closed interval with grid-aligned bounds; upper bound is
/// infinite with probability ¼.
pub fn random_interval(rng: &mut Xoshiro256StarStar) -> Interval {
    let lo = rng.range_usize(400) as f64 / 4.0;
    if rng.bool_with(0.25) {
        Interval::new(lo, f64::INFINITY).unwrap()
    } else {
        let len = rng.range_usize(400) as f64 / 4.0;
        Interval::new(lo, lo + len).unwrap()
    }
}

/// A uniformly random comparison operator.
pub fn random_op(rng: &mut Xoshiro256StarStar) -> CompareOp {
    match rng.range_usize(4) {
        0 => CompareOp::Lt,
        1 => CompareOp::Le,
        2 => CompareOp::Gt,
        _ => CompareOp::Ge,
    }
}

/// A random probability bound on a percent grid, so it prints exactly.
pub fn random_bound(rng: &mut Xoshiro256StarStar) -> f64 {
    rng.range_usize(101) as f64 / 100.0
}

/// A random atomic-proposition name matching `[a-z][a-z0-9_]{0,6}`.
pub fn random_ap(rng: &mut Xoshiro256StarStar) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    let mut s = String::new();
    s.push(FIRST[rng.range_usize(FIRST.len())] as char);
    for _ in 0..rng.range_usize(7) {
        s.push(REST[rng.range_usize(REST.len())] as char);
    }
    s
}

/// A random state formula of nesting depth at most `depth`.
///
/// At depth 0 only leaves (`TT`, `FF`, atomic propositions) are produced;
/// deeper levels draw uniformly from negation, conjunction, disjunction,
/// implication, steady-state, and time/reward-bounded next and until
/// operators, so the full grammar of the printer is exercised.
pub fn random_formula(rng: &mut Xoshiro256StarStar, depth: usize) -> StateFormula {
    if depth == 0 {
        return match rng.range_usize(4) {
            0 => StateFormula::True,
            1 => StateFormula::False,
            _ => StateFormula::Ap(random_ap(rng)),
        };
    }
    match rng.range_usize(8) {
        0 => random_formula(rng, depth - 1).not(),
        1 => random_formula(rng, depth - 1).and(random_formula(rng, depth - 1)),
        2 => random_formula(rng, depth - 1).or(random_formula(rng, depth - 1)),
        3 => StateFormula::Implies(
            Box::new(random_formula(rng, depth - 1)),
            Box::new(random_formula(rng, depth - 1)),
        ),
        4 => StateFormula::Steady {
            op: random_op(rng),
            bound: random_bound(rng),
            inner: Box::new(random_formula(rng, depth - 1)),
        },
        5 => StateFormula::prob_next(
            random_op(rng),
            random_bound(rng),
            random_interval(rng),
            random_interval(rng),
            random_formula(rng, depth - 1),
        ),
        6 => StateFormula::prob_until(
            random_op(rng),
            random_bound(rng),
            random_interval(rng),
            random_interval(rng),
            random_formula(rng, depth - 1),
            random_formula(rng, depth - 1),
        ),
        _ => random_formula(rng, depth - 1),
    }
}

/// A random path formula (next or until) with depth-`depth` operands.
pub fn random_path_formula(rng: &mut Xoshiro256StarStar, depth: usize) -> PathFormula {
    if rng.bool_with(0.5) {
        PathFormula::Next {
            time: random_interval(rng),
            reward: random_interval(rng),
            inner: random_formula(rng, depth),
        }
    } else {
        PathFormula::Until {
            time: random_interval(rng),
            reward: random_interval(rng),
            lhs: random_formula(rng, depth),
            rhs: random_formula(rng, depth),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = Xoshiro256StarStar::seed_from_u64(99);
        let mut b = Xoshiro256StarStar::seed_from_u64(99);
        for _ in 0..32 {
            assert_eq!(random_formula(&mut a, 3), random_formula(&mut b, 3));
        }
    }

    #[test]
    fn depth_zero_yields_leaves() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        for _ in 0..32 {
            match random_formula(&mut rng, 0) {
                StateFormula::True | StateFormula::False | StateFormula::Ap(_) => {}
                other => panic!("non-leaf at depth 0: {other:?}"),
            }
        }
    }

    #[test]
    fn ap_names_are_valid_identifiers() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(6);
        for _ in 0..128 {
            let ap = random_ap(&mut rng);
            let mut chars = ap.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            assert!(ap.len() <= 7);
        }
    }
}
