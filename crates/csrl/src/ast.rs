//! The abstract syntax of CSRL (Definition 3.5).

use crate::interval::Interval;

/// A comparison operator `⊴ ∈ {<, ≤, >, ≥}` used in probability bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompareOp {
    /// Evaluate `actual ⊴ bound`.
    pub fn eval(self, actual: f64, bound: f64) -> bool {
        match self {
            CompareOp::Lt => actual < bound,
            CompareOp::Le => actual <= bound,
            CompareOp::Gt => actual > bound,
            CompareOp::Ge => actual >= bound,
        }
    }

    /// Evaluate `actual ⊴ bound` when `actual` is only known to lie in
    /// `[lo, hi]`: `Some(verdict)` when every value in the interval agrees,
    /// `None` when the bound falls inside the interval and the comparison
    /// is undecidable at this accuracy. All four operators are monotone in
    /// `actual`, so checking the endpoints suffices.
    pub fn eval_interval(self, lo: f64, hi: f64, bound: f64) -> Option<bool> {
        let at_lo = self.eval(lo, bound);
        let at_hi = self.eval(hi, bound);
        if at_lo == at_hi {
            Some(at_lo)
        } else {
            None
        }
    }

    /// The dual comparison under complementation: `P(q) ⊴ p` iff
    /// `P(¬q) = 1 − P(q)` satisfies the dual against `1 − p`. Used to
    /// desugar the globally operator (`□φ ≡ ¬◇¬φ`).
    pub fn dual(self) -> CompareOp {
        match self {
            CompareOp::Lt => CompareOp::Gt,
            CompareOp::Le => CompareOp::Ge,
            CompareOp::Gt => CompareOp::Lt,
            CompareOp::Ge => CompareOp::Le,
        }
    }

    /// The concrete-syntax spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }
}

/// A CSRL state formula.
///
/// `∧` and `⇒` are kept as first-class constructors (the thesis derives them
/// from `¬` and `∨`, and [`StateFormula::desugared`] performs exactly that
/// rewriting when a minimal core is preferable).
#[derive(Debug, Clone, PartialEq)]
pub enum StateFormula {
    /// `tt` — true in every state.
    True,
    /// `ff` — false in every state (`¬tt`).
    False,
    /// An atomic proposition.
    Ap(String),
    /// Negation `¬Φ`.
    Not(Box<StateFormula>),
    /// Disjunction `Φ ∨ Ψ`.
    Or(Box<StateFormula>, Box<StateFormula>),
    /// Conjunction `Φ ∧ Ψ`.
    And(Box<StateFormula>, Box<StateFormula>),
    /// Implication `Φ ⇒ Ψ`.
    Implies(Box<StateFormula>, Box<StateFormula>),
    /// The steady-state measure `S_{⊴p}(Φ)`.
    Steady {
        /// The comparison operator `⊴`.
        op: CompareOp,
        /// The probability bound `p`.
        bound: f64,
        /// The inner state formula `Φ`.
        inner: Box<StateFormula>,
    },
    /// The transient probability measure `P_{⊴p}(φ)`.
    Prob {
        /// The comparison operator `⊴`.
        op: CompareOp,
        /// The probability bound `p`.
        bound: f64,
        /// The path formula `φ`.
        path: Box<PathFormula>,
    },
}

/// A CSRL path formula.
#[derive(Debug, Clone, PartialEq)]
pub enum PathFormula {
    /// `X^I_J Φ`: the next transition reaches a Φ-state at a time in `I`
    /// with accumulated reward in `J`.
    Next {
        /// The timing constraint `I`.
        time: Interval,
        /// The accumulated-reward bound `J`.
        reward: Interval,
        /// The target state formula `Φ`.
        inner: StateFormula,
    },
    /// `Φ U^I_J Ψ`: a Ψ-state is reached at a time in `I` with accumulated
    /// reward in `J`, through Φ-states only.
    Until {
        /// The timing constraint `I`.
        time: Interval,
        /// The accumulated-reward bound `J`.
        reward: Interval,
        /// The left-hand (invariant) state formula `Φ`.
        lhs: StateFormula,
        /// The right-hand (goal) state formula `Ψ`.
        rhs: StateFormula,
    },
}

impl StateFormula {
    /// `Φ ∨ Ψ`.
    pub fn or(self, rhs: StateFormula) -> StateFormula {
        StateFormula::Or(Box::new(self), Box::new(rhs))
    }

    /// `Φ ∧ Ψ`.
    pub fn and(self, rhs: StateFormula) -> StateFormula {
        StateFormula::And(Box::new(self), Box::new(rhs))
    }

    /// `¬Φ`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> StateFormula {
        StateFormula::Not(Box::new(self))
    }

    /// An atomic proposition.
    pub fn ap(name: impl Into<String>) -> StateFormula {
        StateFormula::Ap(name.into())
    }

    /// `P_{⊴p}(Φ U^I_J Ψ)`.
    pub fn prob_until(
        op: CompareOp,
        bound: f64,
        time: Interval,
        reward: Interval,
        lhs: StateFormula,
        rhs: StateFormula,
    ) -> StateFormula {
        StateFormula::Prob {
            op,
            bound,
            path: Box::new(PathFormula::Until {
                time,
                reward,
                lhs,
                rhs,
            }),
        }
    }

    /// `P_{⊴p}(◇^I_J Φ) = P_{⊴p}(tt U^I_J Φ)` (the derived eventually).
    pub fn prob_eventually(
        op: CompareOp,
        bound: f64,
        time: Interval,
        reward: Interval,
        goal: StateFormula,
    ) -> StateFormula {
        StateFormula::prob_until(op, bound, time, reward, StateFormula::True, goal)
    }

    /// `P_{⊴p}(□^I_J Φ)`, desugared through the duality
    /// `Pr(□φ) = 1 − Pr(◇¬φ)`: the probability bound becomes `1 − p`
    /// under the dual comparison, with no outer negation —
    /// `Pr(□φ) ⊴ p ⟺ Pr(◇¬φ) ⊴ᵈ (1 − p)`.
    pub fn prob_globally(
        op: CompareOp,
        bound: f64,
        time: Interval,
        reward: Interval,
        inner: StateFormula,
    ) -> StateFormula {
        StateFormula::prob_eventually(op.dual(), 1.0 - bound, time, reward, inner.not())
    }

    /// `P_{⊴p}(X^I_J Φ)`.
    pub fn prob_next(
        op: CompareOp,
        bound: f64,
        time: Interval,
        reward: Interval,
        inner: StateFormula,
    ) -> StateFormula {
        StateFormula::Prob {
            op,
            bound,
            path: Box::new(PathFormula::Next {
                time,
                reward,
                inner,
            }),
        }
    }

    /// Rewrite to the minimal core of Definition 3.5:
    /// `ff ↦ ¬tt`, `Φ ∧ Ψ ↦ ¬(¬Φ ∨ ¬Ψ)`, `Φ ⇒ Ψ ↦ ¬Φ ∨ Ψ`.
    pub fn desugared(&self) -> StateFormula {
        match self {
            StateFormula::True => StateFormula::True,
            StateFormula::False => StateFormula::True.not(),
            StateFormula::Ap(a) => StateFormula::Ap(a.clone()),
            StateFormula::Not(f) => f.desugared().not(),
            StateFormula::Or(a, b) => a.desugared().or(b.desugared()),
            StateFormula::And(a, b) => a.desugared().not().or(b.desugared().not()).not(),
            StateFormula::Implies(a, b) => a.desugared().not().or(b.desugared()),
            StateFormula::Steady { op, bound, inner } => StateFormula::Steady {
                op: *op,
                bound: *bound,
                inner: Box::new(inner.desugared()),
            },
            StateFormula::Prob { op, bound, path } => StateFormula::Prob {
                op: *op,
                bound: *bound,
                path: Box::new(match path.as_ref() {
                    PathFormula::Next {
                        time,
                        reward,
                        inner,
                    } => PathFormula::Next {
                        time: *time,
                        reward: *reward,
                        inner: inner.desugared(),
                    },
                    PathFormula::Until {
                        time,
                        reward,
                        lhs,
                        rhs,
                    } => PathFormula::Until {
                        time: *time,
                        reward: *reward,
                        lhs: lhs.desugared(),
                        rhs: rhs.desugared(),
                    },
                }),
            },
        }
    }

    /// All atomic propositions mentioned, sorted and de-duplicated.
    pub fn propositions(&self) -> Vec<&str> {
        fn walk<'a>(f: &'a StateFormula, out: &mut Vec<&'a str>) {
            match f {
                StateFormula::True | StateFormula::False => {}
                StateFormula::Ap(a) => out.push(a),
                StateFormula::Not(f) => walk(f, out),
                StateFormula::Or(a, b) | StateFormula::And(a, b) | StateFormula::Implies(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                StateFormula::Steady { inner, .. } => walk(inner, out),
                StateFormula::Prob { path, .. } => match path.as_ref() {
                    PathFormula::Next { inner, .. } => walk(inner, out),
                    PathFormula::Until { lhs, rhs, .. } => {
                        walk(lhs, out);
                        walk(rhs, out);
                    }
                },
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_op_eval() {
        assert!(CompareOp::Lt.eval(0.2, 0.5));
        assert!(!CompareOp::Lt.eval(0.5, 0.5));
        assert!(CompareOp::Le.eval(0.5, 0.5));
        assert!(CompareOp::Gt.eval(0.7, 0.5));
        assert!(CompareOp::Ge.eval(0.5, 0.5));
        assert!(!CompareOp::Ge.eval(0.4, 0.5));
        assert_eq!(CompareOp::Ge.symbol(), ">=");
    }

    #[test]
    fn interval_eval_three_valued() {
        // Interval entirely on one side: decided.
        assert_eq!(CompareOp::Gt.eval_interval(0.6, 0.7, 0.5), Some(true));
        assert_eq!(CompareOp::Gt.eval_interval(0.2, 0.3, 0.5), Some(false));
        // Bound inside the interval: undecidable.
        assert_eq!(CompareOp::Gt.eval_interval(0.4, 0.6, 0.5), None);
        assert_eq!(CompareOp::Le.eval_interval(0.4, 0.6, 0.5), None);
        // Endpoint cases follow strictness: [0.5, 0.6] > 0.5 is undecided
        // (lo fails the strict test), but ≥ 0.5 holds throughout.
        assert_eq!(CompareOp::Gt.eval_interval(0.5, 0.6, 0.5), None);
        assert_eq!(CompareOp::Ge.eval_interval(0.5, 0.6, 0.5), Some(true));
        // Degenerate interval: plain eval.
        assert_eq!(CompareOp::Lt.eval_interval(0.3, 0.3, 0.5), Some(true));
    }

    #[test]
    fn builders_compose() {
        let f = StateFormula::ap("busy")
            .or(StateFormula::ap("idle"))
            .and(StateFormula::True.not());
        assert!(matches!(f, StateFormula::And(..)));
        assert_eq!(f.propositions(), vec!["busy", "idle"]);
    }

    #[test]
    fn desugar_removes_derived_operators() {
        let f = StateFormula::ap("a").and(StateFormula::ap("b"));
        let d = f.desugared();
        // ¬(¬a ∨ ¬b)
        match &d {
            StateFormula::Not(inner) => match inner.as_ref() {
                StateFormula::Or(l, r) => {
                    assert!(matches!(l.as_ref(), StateFormula::Not(_)));
                    assert!(matches!(r.as_ref(), StateFormula::Not(_)));
                }
                other => panic!("expected Or, got {other:?}"),
            },
            other => panic!("expected Not, got {other:?}"),
        }

        let imp = StateFormula::Implies(
            Box::new(StateFormula::ap("a")),
            Box::new(StateFormula::ap("b")),
        )
        .desugared();
        assert!(matches!(imp, StateFormula::Or(..)));

        assert_eq!(StateFormula::False.desugared(), StateFormula::True.not());
    }

    #[test]
    fn desugar_descends_into_operators() {
        let f = StateFormula::prob_until(
            CompareOp::Ge,
            0.5,
            Interval::upto(10.0),
            Interval::unbounded(),
            StateFormula::ap("x").and(StateFormula::ap("y")),
            StateFormula::False,
        );
        let d = f.desugared();
        if let StateFormula::Prob { path, .. } = &d {
            if let PathFormula::Until { lhs, rhs, .. } = path.as_ref() {
                assert!(matches!(lhs, StateFormula::Not(_)));
                assert_eq!(*rhs, StateFormula::True.not());
                return;
            }
        }
        panic!("unexpected shape: {d:?}");
    }

    #[test]
    fn propositions_of_nested_formula() {
        let f = StateFormula::Steady {
            op: CompareOp::Ge,
            bound: 0.3,
            inner: Box::new(StateFormula::prob_next(
                CompareOp::Lt,
                0.9,
                Interval::unbounded(),
                Interval::unbounded(),
                StateFormula::ap("z").or(StateFormula::ap("a")),
            )),
        };
        assert_eq!(f.propositions(), vec!["a", "z"]);
    }
}
