//! Continuous Stochastic Reward Logic (CSRL) over Markov reward models with
//! impulse rewards.
//!
//! This crate implements Section 3.6 of *Model Checking Markov Reward Models
//! with Impulse Rewards*: the syntax of CSRL state and path formulas
//! ([`StateFormula`], [`PathFormula`]), closed time/reward intervals with the
//! `⊖` shift operation ([`Interval`]), a lexer and recursive-descent parser
//! for the thesis tool's concrete syntax, and a pretty-printer that
//! round-trips through the parser.
//!
//! # Concrete syntax (Appendix: Usage Manual)
//!
//! ```text
//! TT | FF | <ap> | ! f | f && f | f || f | f => f | (f)
//! S(op p) f
//! P(op p) [ X[t1,t2][r1,r2] f ]
//! P(op p) [ f U[t1,t2][r1,r2] f ]
//! P(op p) [ F[t1,t2][r1,r2] f ]      -- derived: tt U f
//! P(op p) [ G[t1,t2][r1,r2] f ]      -- derived: ¬◇¬f (dual bound)
//! ```
//!
//! where `op ∈ {<, <=, >, >=}`, `p` is a probability, and `~` denotes
//! infinity. Both interval groups are optional and default to `[0, ~]`.
//!
//! # Example
//!
//! ```
//! use mrmc_csrl::parse;
//!
//! let f = parse("P(>= 0.3) [ a U[0,3][0,23] b ]")?;
//! // The printer emits canonical syntax that parses back to the same AST.
//! let again = parse(&f.to_string())?;
//! assert_eq!(f, again);
//! # Ok::<(), mrmc_csrl::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
pub mod generator;
mod interval;
mod lexer;
mod parser;
mod printer;

pub use ast::{CompareOp, PathFormula, StateFormula};
pub use interval::{Interval, IntervalError};
pub use lexer::{LexError, Token, TokenKind};
pub use parser::{parse, ParseError};
