//! Pretty-printing of CSRL formulas in the tool's concrete syntax.
//!
//! The printer guarantees `parse(f.to_string()) == f` (verified by property
//! tests): precedence is made explicit with parentheses where needed, and
//! interval bounds are always printed so contextual keywords cannot collide
//! with propositions.

use std::fmt;

use crate::ast::{CompareOp, PathFormula, StateFormula};

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Binding strength used for parenthesization (higher binds tighter).
fn precedence(f: &StateFormula) -> u8 {
    match f {
        StateFormula::Implies(..) => 1,
        StateFormula::Or(..) => 2,
        StateFormula::And(..) => 3,
        StateFormula::Not(_) | StateFormula::Steady { .. } => 4,
        StateFormula::True
        | StateFormula::False
        | StateFormula::Ap(_)
        | StateFormula::Prob { .. } => 5,
    }
}

/// Write `f`, parenthesized if its precedence is below `min`.
fn write_at(f: &StateFormula, min: u8, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    if precedence(f) < min {
        write!(out, "(")?;
        write_formula(f, out)?;
        write!(out, ")")
    } else {
        write_formula(f, out)
    }
}

fn write_formula(f: &StateFormula, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    match f {
        StateFormula::True => write!(out, "TT"),
        StateFormula::False => write!(out, "FF"),
        StateFormula::Ap(a) => write!(out, "{a}"),
        StateFormula::Not(inner) => {
            write!(out, "!")?;
            write_at(inner, 4, out)
        }
        StateFormula::And(a, b) => {
            write_at(a, 3, out)?;
            write!(out, " && ")?;
            write_at(b, 4, out)
        }
        StateFormula::Or(a, b) => {
            write_at(a, 2, out)?;
            write!(out, " || ")?;
            write_at(b, 3, out)
        }
        StateFormula::Implies(a, b) => {
            write_at(a, 2, out)?;
            write!(out, " => ")?;
            write_at(b, 1, out)
        }
        StateFormula::Steady { op, bound, inner } => {
            write!(out, "S({op} {bound}) ")?;
            // Always parenthesize: `S(op p)` binds one unary formula.
            write!(out, "(")?;
            write_formula(inner, out)?;
            write!(out, ")")
        }
        StateFormula::Prob { op, bound, path } => {
            write!(out, "P({op} {bound}) [")?;
            match path.as_ref() {
                PathFormula::Next {
                    time,
                    reward,
                    inner,
                } => {
                    write!(out, "X{time}{reward} ")?;
                    write_formula(inner, out)?;
                }
                PathFormula::Until {
                    time,
                    reward,
                    lhs,
                    rhs,
                } => {
                    write_formula(lhs, out)?;
                    write!(out, " U{time}{reward} ")?;
                    write_formula(rhs, out)?;
                }
            }
            write!(out, "]")
        }
    }
}

impl fmt::Display for StateFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_formula(self, f)
    }
}

impl fmt::Display for PathFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathFormula::Next {
                time,
                reward,
                inner,
            } => write!(f, "X{time}{reward} {inner}"),
            PathFormula::Until {
                time,
                reward,
                lhs,
                rhs,
            } => write!(f, "{lhs} U{time}{reward} {rhs}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::random_formula;
    use crate::interval::Interval;
    use crate::parser::parse;
    use mrmc_sparse::rng::Xoshiro256StarStar;

    #[test]
    fn prints_canonical_until() {
        let f = StateFormula::prob_until(
            CompareOp::Ge,
            0.3,
            Interval::upto(3.0),
            Interval::upto(23.0),
            StateFormula::ap("a"),
            StateFormula::ap("b"),
        );
        assert_eq!(f.to_string(), "P(>= 0.3) [a U[0,3][0,23] b]");
    }

    #[test]
    fn prints_infinity_as_tilde() {
        let f = StateFormula::prob_next(
            CompareOp::Lt,
            0.5,
            Interval::unbounded(),
            Interval::upto(7.0),
            StateFormula::ap("x"),
        );
        assert_eq!(f.to_string(), "P(< 0.5) [X[0,~][0,7] x]");
    }

    #[test]
    fn parenthesizes_by_precedence() {
        let f = StateFormula::ap("a")
            .or(StateFormula::ap("b"))
            .and(StateFormula::ap("c"));
        assert_eq!(f.to_string(), "(a || b) && c");
        let g = StateFormula::ap("a").and(StateFormula::ap("b")).not();
        assert_eq!(g.to_string(), "!(a && b)");
        let h = StateFormula::ap("a")
            .and(StateFormula::ap("b"))
            .or(StateFormula::ap("c"));
        assert_eq!(h.to_string(), "a && b || c");
    }

    #[test]
    fn roundtrips_fixed_formulas() {
        for text in [
            "TT",
            "FF",
            "!a",
            "a && b && c",
            "a || b && !c",
            "a => b => c",
            "(a => b) => c",
            "S(>= 0.3) (b)",
            "P(> 0.5) [TT U[0,600][0,50] busy]",
            "P(> 0.8) [(busy || idle) U[0,10][0,50] sleep]",
            "P(< 0.1) [X[0,~][0,~] sleep]",
            "P(> 0.8) [X[0,~][0,~] (P(> 0.5) [X[0,10][0,50] sleep])]",
            "S(<= 0.9) (P(>= 0.1) [a U[1,2][3,4.5] b])",
        ] {
            let f = parse(text).unwrap();
            let printed = f.to_string();
            let again = parse(&printed)
                .unwrap_or_else(|e| panic!("printed `{printed}` failed to parse: {e}"));
            assert_eq!(f, again, "roundtrip of `{text}` via `{printed}`");
        }
    }

    #[test]
    fn print_parse_roundtrip() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x9121);
        for _ in 0..256 {
            let f = random_formula(&mut rng, 4);
            let printed = f.to_string();
            let parsed = parse(&printed);
            assert!(parsed.is_ok(), "`{printed}` failed: {parsed:?}");
            assert_eq!(parsed.unwrap(), f, "via `{printed}`");
        }
    }
}
