//! Pretty-printing of CSRL formulas in the tool's concrete syntax.
//!
//! The printer guarantees `parse(f.to_string()) == f` (verified by property
//! tests): precedence is made explicit with parentheses where needed, and
//! interval bounds are always printed so contextual keywords cannot collide
//! with propositions.

use std::fmt;

use crate::ast::{CompareOp, PathFormula, StateFormula};

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Binding strength used for parenthesization (higher binds tighter).
fn precedence(f: &StateFormula) -> u8 {
    match f {
        StateFormula::Implies(..) => 1,
        StateFormula::Or(..) => 2,
        StateFormula::And(..) => 3,
        StateFormula::Not(_) | StateFormula::Steady { .. } => 4,
        StateFormula::True
        | StateFormula::False
        | StateFormula::Ap(_)
        | StateFormula::Prob { .. } => 5,
    }
}

/// Write `f`, parenthesized if its precedence is below `min`.
fn write_at(f: &StateFormula, min: u8, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    if precedence(f) < min {
        write!(out, "(")?;
        write_formula(f, out)?;
        write!(out, ")")
    } else {
        write_formula(f, out)
    }
}

fn write_formula(f: &StateFormula, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    match f {
        StateFormula::True => write!(out, "TT"),
        StateFormula::False => write!(out, "FF"),
        StateFormula::Ap(a) => write!(out, "{a}"),
        StateFormula::Not(inner) => {
            write!(out, "!")?;
            write_at(inner, 4, out)
        }
        StateFormula::And(a, b) => {
            write_at(a, 3, out)?;
            write!(out, " && ")?;
            write_at(b, 4, out)
        }
        StateFormula::Or(a, b) => {
            write_at(a, 2, out)?;
            write!(out, " || ")?;
            write_at(b, 3, out)
        }
        StateFormula::Implies(a, b) => {
            write_at(a, 2, out)?;
            write!(out, " => ")?;
            write_at(b, 1, out)
        }
        StateFormula::Steady { op, bound, inner } => {
            write!(out, "S({op} {bound}) ")?;
            // Always parenthesize: `S(op p)` binds one unary formula.
            write!(out, "(")?;
            write_formula(inner, out)?;
            write!(out, ")")
        }
        StateFormula::Prob { op, bound, path } => {
            write!(out, "P({op} {bound}) [")?;
            match path.as_ref() {
                PathFormula::Next {
                    time,
                    reward,
                    inner,
                } => {
                    write!(out, "X{time}{reward} ")?;
                    write_formula(inner, out)?;
                }
                PathFormula::Until {
                    time,
                    reward,
                    lhs,
                    rhs,
                } => {
                    write_formula(lhs, out)?;
                    write!(out, " U{time}{reward} ")?;
                    write_formula(rhs, out)?;
                }
            }
            write!(out, "]")
        }
    }
}

impl fmt::Display for StateFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_formula(self, f)
    }
}

impl fmt::Display for PathFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathFormula::Next {
                time,
                reward,
                inner,
            } => write!(f, "X{time}{reward} {inner}"),
            PathFormula::Until {
                time,
                reward,
                lhs,
                rhs,
            } => write!(f, "{lhs} U{time}{reward} {rhs}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use crate::parser::parse;
    use proptest::prelude::*;

    #[test]
    fn prints_canonical_until() {
        let f = StateFormula::prob_until(
            CompareOp::Ge,
            0.3,
            Interval::upto(3.0),
            Interval::upto(23.0),
            StateFormula::ap("a"),
            StateFormula::ap("b"),
        );
        assert_eq!(f.to_string(), "P(>= 0.3) [a U[0,3][0,23] b]");
    }

    #[test]
    fn prints_infinity_as_tilde() {
        let f = StateFormula::prob_next(
            CompareOp::Lt,
            0.5,
            Interval::unbounded(),
            Interval::upto(7.0),
            StateFormula::ap("x"),
        );
        assert_eq!(f.to_string(), "P(< 0.5) [X[0,~][0,7] x]");
    }

    #[test]
    fn parenthesizes_by_precedence() {
        let f = StateFormula::ap("a").or(StateFormula::ap("b")).and(StateFormula::ap("c"));
        assert_eq!(f.to_string(), "(a || b) && c");
        let g = StateFormula::ap("a").and(StateFormula::ap("b")).not();
        assert_eq!(g.to_string(), "!(a && b)");
        let h = StateFormula::ap("a").and(StateFormula::ap("b")).or(StateFormula::ap("c"));
        assert_eq!(h.to_string(), "a && b || c");
    }

    #[test]
    fn roundtrips_fixed_formulas() {
        for text in [
            "TT",
            "FF",
            "!a",
            "a && b && c",
            "a || b && !c",
            "a => b => c",
            "(a => b) => c",
            "S(>= 0.3) (b)",
            "P(> 0.5) [TT U[0,600][0,50] busy]",
            "P(> 0.8) [(busy || idle) U[0,10][0,50] sleep]",
            "P(< 0.1) [X[0,~][0,~] sleep]",
            "P(> 0.8) [X[0,~][0,~] (P(> 0.5) [X[0,10][0,50] sleep])]",
            "S(<= 0.9) (P(>= 0.1) [a U[1,2][3,4.5] b])",
        ] {
            let f = parse(text).unwrap();
            let printed = f.to_string();
            let again = parse(&printed).unwrap_or_else(|e| {
                panic!("printed `{printed}` failed to parse: {e}")
            });
            assert_eq!(f, again, "roundtrip of `{text}` via `{printed}`");
        }
    }

    fn arb_interval() -> impl Strategy<Value = Interval> {
        (0u32..100, 0u32..100, proptest::bool::ANY).prop_map(|(lo, len, inf)| {
            let lo = lo as f64 / 4.0;
            if inf {
                Interval::new(lo, f64::INFINITY).unwrap()
            } else {
                Interval::new(lo, lo + len as f64 / 4.0).unwrap()
            }
        })
    }

    fn arb_op() -> impl Strategy<Value = CompareOp> {
        prop_oneof![
            Just(CompareOp::Lt),
            Just(CompareOp::Le),
            Just(CompareOp::Gt),
            Just(CompareOp::Ge),
        ]
    }

    fn arb_formula() -> impl Strategy<Value = StateFormula> {
        let leaf = prop_oneof![
            Just(StateFormula::True),
            Just(StateFormula::False),
            "[a-z][a-z0-9_]{0,6}".prop_map(StateFormula::Ap),
        ];
        leaf.prop_recursive(4, 24, 3, |inner| {
            let prob = (0u32..=100).prop_map(|p| p as f64 / 100.0);
            prop_oneof![
                inner.clone().prop_map(|f| f.not()),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| StateFormula::Implies(
                    Box::new(a),
                    Box::new(b)
                )),
                (arb_op(), prob.clone(), inner.clone()).prop_map(|(op, bound, f)| {
                    StateFormula::Steady {
                        op,
                        bound,
                        inner: Box::new(f),
                    }
                }),
                (
                    arb_op(),
                    prob.clone(),
                    arb_interval(),
                    arb_interval(),
                    inner.clone()
                )
                    .prop_map(|(op, bound, t, r, f)| StateFormula::prob_next(
                        op, bound, t, r, f
                    )),
                (
                    arb_op(),
                    prob,
                    arb_interval(),
                    arb_interval(),
                    inner.clone(),
                    inner
                )
                    .prop_map(|(op, bound, t, r, a, b)| StateFormula::prob_until(
                        op, bound, t, r, a, b
                    )),
            ]
        })
    }

    proptest! {
        #[test]
        fn print_parse_roundtrip(f in arb_formula()) {
            let printed = f.to_string();
            let parsed = parse(&printed);
            prop_assert!(parsed.is_ok(), "`{}` failed: {:?}", printed, parsed);
            prop_assert_eq!(parsed.unwrap(), f, "via `{}`", printed);
        }
    }
}
