//! Recursive-descent parser for the CSRL concrete syntax.
//!
//! Grammar (see the crate docs for the surface syntax):
//!
//! ```text
//! formula  := or ( '=>' formula )?
//! or       := and ( '||' and )*
//! and      := unary ( '&&' unary )*
//! unary    := '!' unary | primary
//! primary  := 'TT' | 'FF' | ident | '(' formula ')'
//!           | 'S' '(' cmp num ')' unary
//!           | 'P' '(' cmp num ')' '[' path ']'
//! path     := 'X' bounds formula | 'F' bounds formula
//!            | 'G' bounds formula | formula 'U' bounds formula
//! bounds   := ( interval interval? )?          -- defaults to [0,~][0,~]
//! interval := '[' (num | '~') ',' (num | '~') ']'
//! ```
//!
//! `F φ` is the derived eventually `tt U φ`; `G φ` is the derived globally,
//! desugared through the thesis' duality `P_{⊴p}(□φ) = ¬P_{dual}(◇¬φ)`.
//! `S`, `P` (before `(`) and `X`, `U`, `F`, `G` (inside path brackets) are
//! contextual keywords and cannot be used as atomic propositions in those
//! positions.

use std::error::Error;
use std::fmt;

use crate::ast::{CompareOp, PathFormula, StateFormula};
use crate::interval::Interval;
use crate::lexer::{tokenize, LexError, Token, TokenKind};

/// A parse error with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset into the input (input length for end-of-input errors).
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at offset {}: {}", self.offset, self.message)
    }
}

impl Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            offset: e.offset,
            message: format!("unexpected `{}`", e.fragment),
        }
    }
}

/// Parse a CSRL state formula from its concrete syntax.
///
/// # Errors
///
/// [`ParseError`] with a byte offset and message; probability bounds outside
/// `[0, 1]` and malformed intervals are rejected here.
///
/// ```
/// let f = mrmc_csrl::parse("S(>= 0.3) (b)")?;
/// assert!(matches!(f, mrmc_csrl::StateFormula::Steady { .. }));
/// # Ok::<(), mrmc_csrl::ParseError>(())
/// ```
pub fn parse(input: &str) -> Result<StateFormula, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
    };
    let f = p.formula()?;
    if let Some(t) = p.peek() {
        return Err(ParseError {
            offset: t.offset,
            message: format!("unexpected trailing {:?}", t.kind),
        });
    }
    Ok(f)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.peek().map_or(self.input_len, |t| t.offset),
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if &t.kind == kind => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err_here(format!("expected {what}"))),
        }
    }

    fn peek_ident(&self, name: &str) -> bool {
        matches!(self.peek(), Some(Token { kind: TokenKind::Ident(s), .. }) if s == name)
    }

    fn formula(&mut self) -> Result<StateFormula, ParseError> {
        let lhs = self.or_formula()?;
        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Implies)) {
            self.pos += 1;
            let rhs = self.formula()?; // right-associative
            return Ok(StateFormula::Implies(Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn or_formula(&mut self) -> Result<StateFormula, ParseError> {
        let mut lhs = self.and_formula()?;
        while matches!(self.peek().map(|t| &t.kind), Some(TokenKind::OrOr)) {
            self.pos += 1;
            let rhs = self.and_formula()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn and_formula(&mut self) -> Result<StateFormula, ParseError> {
        let mut lhs = self.unary()?;
        while matches!(self.peek().map(|t| &t.kind), Some(TokenKind::AndAnd)) {
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<StateFormula, ParseError> {
        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Not)) {
            self.pos += 1;
            return Ok(self.unary()?.not());
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<StateFormula, ParseError> {
        // `S(`/`P(` are operators; a bare `S`/`P` is an atomic proposition.
        let next_is_lparen = matches!(
            self.tokens.get(self.pos + 1).map(|t| &t.kind),
            Some(TokenKind::LParen)
        );
        if self.peek_ident("S") && next_is_lparen {
            return self.steady();
        }
        if self.peek_ident("P") && next_is_lparen {
            return self.prob();
        }
        match self.bump() {
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) => match s.as_str() {
                "TT" => Ok(StateFormula::True),
                "FF" => Ok(StateFormula::False),
                _ => Ok(StateFormula::Ap(s)),
            },
            Some(Token {
                kind: TokenKind::LParen,
                ..
            }) => {
                let f = self.formula()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(f)
            }
            Some(t) => Err(ParseError {
                offset: t.offset,
                message: format!("expected a formula, found {:?}", t.kind),
            }),
            None => Err(self.err_here("expected a formula, found end of input")),
        }
    }

    fn comparison(&mut self) -> Result<CompareOp, ParseError> {
        match self.bump().map(|t| t.kind) {
            Some(TokenKind::Lt) => Ok(CompareOp::Lt),
            Some(TokenKind::Le) => Ok(CompareOp::Le),
            Some(TokenKind::Gt) => Ok(CompareOp::Gt),
            Some(TokenKind::Ge) => Ok(CompareOp::Ge),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err_here("expected a comparison operator (<, <=, >, >=)"))
            }
        }
    }

    fn probability(&mut self) -> Result<f64, ParseError> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Number(v),
                offset,
            }) => {
                let (v, offset) = (*v, *offset);
                if !(0.0..=1.0).contains(&v) {
                    return Err(ParseError {
                        offset,
                        message: format!("probability bound {v} outside [0, 1]"),
                    });
                }
                self.pos += 1;
                Ok(v)
            }
            _ => Err(self.err_here("expected a probability bound")),
        }
    }

    fn steady(&mut self) -> Result<StateFormula, ParseError> {
        self.pos += 1; // S
        self.expect(&TokenKind::LParen, "`(`")?;
        let op = self.comparison()?;
        let bound = self.probability()?;
        self.expect(&TokenKind::RParen, "`)`")?;
        let inner = self.unary()?;
        Ok(StateFormula::Steady {
            op,
            bound,
            inner: Box::new(inner),
        })
    }

    fn prob(&mut self) -> Result<StateFormula, ParseError> {
        self.pos += 1; // P
        self.expect(&TokenKind::LParen, "`(`")?;
        let op = self.comparison()?;
        let bound = self.probability()?;
        self.expect(&TokenKind::RParen, "`)`")?;
        self.expect(&TokenKind::LBracket, "`[`")?;
        // The globally operator changes the enclosing bound, so it is
        // handled here rather than in `path_formula`.
        if self.peek_ident("G") {
            self.pos += 1;
            let (time, reward) = self.bounds()?;
            let inner = self.formula()?;
            self.expect(&TokenKind::RBracket, "`]`")?;
            return Ok(StateFormula::prob_globally(op, bound, time, reward, inner));
        }
        let path = self.path_formula()?;
        self.expect(&TokenKind::RBracket, "`]`")?;
        Ok(StateFormula::Prob {
            op,
            bound,
            path: Box::new(path),
        })
    }

    fn path_formula(&mut self) -> Result<PathFormula, ParseError> {
        if self.peek_ident("F") {
            // ◇^I_J Φ = tt U^I_J Φ (derived operator of Definition 3.5).
            self.pos += 1;
            let (time, reward) = self.bounds()?;
            let rhs = self.formula()?;
            return Ok(PathFormula::Until {
                time,
                reward,
                lhs: StateFormula::True,
                rhs,
            });
        }
        if self.peek_ident("X") {
            self.pos += 1;
            let (time, reward) = self.bounds()?;
            let inner = self.formula()?;
            return Ok(PathFormula::Next {
                time,
                reward,
                inner,
            });
        }
        let lhs = self.formula()?;
        if !self.peek_ident("U") {
            return Err(self.err_here("expected `U` in path formula"));
        }
        self.pos += 1;
        let (time, reward) = self.bounds()?;
        let rhs = self.formula()?;
        Ok(PathFormula::Until {
            time,
            reward,
            lhs,
            rhs,
        })
    }

    fn bounds(&mut self) -> Result<(Interval, Interval), ParseError> {
        if !matches!(self.peek().map(|t| &t.kind), Some(TokenKind::LBracket)) {
            return Ok((Interval::unbounded(), Interval::unbounded()));
        }
        let time = self.interval()?;
        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::LBracket)) {
            let reward = self.interval()?;
            Ok((time, reward))
        } else {
            Ok((time, Interval::unbounded()))
        }
    }

    fn interval(&mut self) -> Result<Interval, ParseError> {
        let start = self.peek().map_or(self.input_len, |t| t.offset);
        self.expect(&TokenKind::LBracket, "`[`")?;
        let lo = self.bound_value()?;
        self.expect(&TokenKind::Comma, "`,`")?;
        let hi = self.bound_value()?;
        self.expect(&TokenKind::RBracket, "`]`")?;
        Interval::new(lo, hi).map_err(|e| ParseError {
            offset: start,
            message: e.to_string(),
        })
    }

    fn bound_value(&mut self) -> Result<f64, ParseError> {
        match self.bump().map(|t| t.kind) {
            Some(TokenKind::Number(v)) => Ok(v),
            Some(TokenKind::Infinity) => Ok(f64::INFINITY),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err_here("expected a number or `~`"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_atoms_and_boolean_operators() {
        assert_eq!(parse("TT").unwrap(), StateFormula::True);
        assert_eq!(parse("FF").unwrap(), StateFormula::False);
        assert_eq!(parse("busy").unwrap(), StateFormula::ap("busy"));
        assert_eq!(
            parse("a && b").unwrap(),
            StateFormula::ap("a").and(StateFormula::ap("b"))
        );
        assert_eq!(
            parse("!a || b").unwrap(),
            StateFormula::ap("a").not().or(StateFormula::ap("b"))
        );
        assert_eq!(
            parse("a => b").unwrap(),
            StateFormula::Implies(
                Box::new(StateFormula::ap("a")),
                Box::new(StateFormula::ap("b"))
            )
        );
    }

    #[test]
    fn precedence_not_over_and_over_or() {
        // !a && b || c  ==  ((!a) && b) || c
        let f = parse("!a && b || c").unwrap();
        let expect = StateFormula::ap("a")
            .not()
            .and(StateFormula::ap("b"))
            .or(StateFormula::ap("c"));
        assert_eq!(f, expect);
    }

    #[test]
    fn parentheses_override_precedence() {
        let f = parse("!(a && b)").unwrap();
        assert_eq!(f, StateFormula::ap("a").and(StateFormula::ap("b")).not());
    }

    #[test]
    fn implies_is_right_associative() {
        let f = parse("a => b => c").unwrap();
        let expect = StateFormula::Implies(
            Box::new(StateFormula::ap("a")),
            Box::new(StateFormula::Implies(
                Box::new(StateFormula::ap("b")),
                Box::new(StateFormula::ap("c")),
            )),
        );
        assert_eq!(f, expect);
    }

    #[test]
    fn parses_the_manual_until_example() {
        // "a b-state can be reached with probability at least 0.3 by at most
        // 3 time-units along a-states accumulating costs at most 23"
        let f = parse("P(>= 0.3) [a U [0,3][0,23] b]").unwrap();
        assert_eq!(
            f,
            StateFormula::prob_until(
                CompareOp::Ge,
                0.3,
                Interval::upto(3.0),
                Interval::upto(23.0),
                StateFormula::ap("a"),
                StateFormula::ap("b"),
            )
        );
    }

    #[test]
    fn parses_example_3_3_formulas() {
        let f = parse("P(> 0.5) [TT U[0,600][0,50] busy]").unwrap();
        assert!(matches!(f, StateFormula::Prob { .. }));

        let g = parse("P(> 0.8) [(busy || idle) U[0,10][0,50] sleep]").unwrap();
        if let StateFormula::Prob { path, .. } = &g {
            if let PathFormula::Until { lhs, .. } = path.as_ref() {
                assert_eq!(*lhs, StateFormula::ap("busy").or(StateFormula::ap("idle")));
                return;
            }
        }
        panic!("wrong shape: {g:?}");
    }

    #[test]
    fn parses_next_with_and_without_bounds() {
        let f = parse("P(< 0.1) [X busy]").unwrap();
        if let StateFormula::Prob { path, .. } = &f {
            if let PathFormula::Next { time, reward, .. } = path.as_ref() {
                assert!(time.is_trivial());
                assert!(reward.is_trivial());
            } else {
                panic!("expected next");
            }
        }

        let g = parse("P(< 0.1) [X[0,10][0,50] sleep]").unwrap();
        if let StateFormula::Prob { path, .. } = &g {
            if let PathFormula::Next { time, reward, .. } = path.as_ref() {
                assert_eq!((time.lo(), time.hi()), (0.0, 10.0));
                assert_eq!((reward.lo(), reward.hi()), (0.0, 50.0));
                return;
            }
        }
        panic!("wrong shape");
    }

    #[test]
    fn single_interval_is_the_time_bound() {
        let f = parse("P(> 0.1) [a U[0,24] b]").unwrap();
        if let StateFormula::Prob { path, .. } = &f {
            if let PathFormula::Until { time, reward, .. } = path.as_ref() {
                assert_eq!(time.hi(), 24.0);
                assert!(reward.is_trivial());
                return;
            }
        }
        panic!("wrong shape");
    }

    #[test]
    fn infinity_bounds() {
        let f = parse("P(>= 0) [a U[2,~][0,~] b]").unwrap();
        if let StateFormula::Prob { path, .. } = &f {
            if let PathFormula::Until { time, reward, .. } = path.as_ref() {
                assert_eq!(time.lo(), 2.0);
                assert!(time.is_upper_unbounded());
                assert!(reward.is_trivial());
                return;
            }
        }
        panic!("wrong shape");
    }

    #[test]
    fn steady_state_formula() {
        let f = parse("S(>= 0.3) b").unwrap();
        assert_eq!(
            f,
            StateFormula::Steady {
                op: CompareOp::Ge,
                bound: 0.3,
                inner: Box::new(StateFormula::ap("b")),
            }
        );
        // Binds a single unary formula; use parentheses for more.
        let g = parse("S(< 0.5) (a || b)").unwrap();
        if let StateFormula::Steady { inner, .. } = &g {
            assert!(matches!(inner.as_ref(), StateFormula::Or(..)));
        } else {
            panic!("wrong shape");
        }
    }

    #[test]
    fn nested_probability_operators() {
        // Nested measures as in Example 3.3.
        let f = parse("P(> 0.8) [X (P(> 0.5) [X[0,10][0,50] sleep])]").unwrap();
        if let StateFormula::Prob { path, .. } = &f {
            if let PathFormula::Next { inner, .. } = path.as_ref() {
                assert!(matches!(inner, StateFormula::Prob { .. }));
                return;
            }
        }
        panic!("wrong shape");
    }

    #[test]
    fn s_and_p_remain_usable_as_plain_propositions() {
        assert_eq!(parse("S").unwrap(), StateFormula::ap("S"));
        assert_eq!(
            parse("P && S").unwrap(),
            StateFormula::ap("P").and(StateFormula::ap("S"))
        );
    }

    #[test]
    fn error_cases() {
        assert!(parse("").is_err());
        assert!(parse("a &&").is_err());
        assert!(parse("(a").is_err());
        assert!(parse("a b").is_err());
        assert!(parse("P(>= 1.5) [a U b]").is_err()); // bound outside [0,1]
        assert!(parse("P(>= 0.5) [a b]").is_err()); // missing U
        assert!(parse("P(>= 0.5) [a U[3,1] b]").is_err()); // empty interval
        assert!(parse("P(>= 0.5) [a U[~,1] b]").is_err()); // infinite lower bound
        assert!(parse("P(0.5 >) [a U b]").is_err());
        assert!(parse("S(>= 0.3)").is_err());
        let e = parse("a && & b").unwrap_err();
        assert!(e.to_string().contains("offset"));
    }

    #[test]
    fn deeply_nested_parentheses() {
        let f = parse("((((a))))").unwrap();
        assert_eq!(f, StateFormula::ap("a"));
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::parse;
    use mrmc_sparse::rng::Xoshiro256StarStar;

    /// A random printable-ASCII string of length `< max_len`, biased toward
    /// the characters the grammar actually uses so the fuzz corpus reaches
    /// deeper into the parser than uniform noise would.
    fn random_input(rng: &mut Xoshiro256StarStar, max_len: usize) -> String {
        const HOT: &[u8] = b"PSUXFG[](),.<>=&|!~ 0123456789abct";
        let len = rng.range_usize(max_len + 1);
        (0..len)
            .map(|_| {
                if rng.bool_with(0.7) {
                    HOT[rng.range_usize(HOT.len())] as char
                } else {
                    // Any printable ASCII (space ..= tilde).
                    (0x20 + rng.range_usize(0x5f) as u8) as char
                }
            })
            .collect()
    }

    /// The parser is total: arbitrary input produces `Ok` or a
    /// structured error, never a panic.
    #[test]
    fn parser_never_panics() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xF022);
        for _ in 0..512 {
            let input = random_input(&mut rng, 64);
            let _ = parse(&input);
        }
    }

    /// Parsing twice is stable (no interior mutability surprises).
    #[test]
    fn parsing_is_deterministic() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xF023);
        for _ in 0..512 {
            let input = random_input(&mut rng, 48);
            assert_eq!(parse(&input), parse(&input));
        }
    }
}

#[cfg(test)]
mod derived_operator_tests {
    use super::parse;
    use crate::ast::{CompareOp, PathFormula, StateFormula};
    use crate::interval::Interval;

    #[test]
    fn eventually_desugars_to_until_from_true() {
        let f = parse("P(> 0.5) [F[0,10][0,50] goal]").unwrap();
        assert_eq!(
            f,
            StateFormula::prob_eventually(
                CompareOp::Gt,
                0.5,
                Interval::upto(10.0),
                Interval::upto(50.0),
                StateFormula::ap("goal"),
            )
        );
    }

    #[test]
    fn eventually_without_bounds() {
        let f = parse("P(>= 1) [F goal]").unwrap();
        if let StateFormula::Prob { path, .. } = &f {
            if let PathFormula::Until {
                lhs, time, reward, ..
            } = path.as_ref()
            {
                assert_eq!(*lhs, StateFormula::True);
                assert!(time.is_trivial());
                assert!(reward.is_trivial());
                return;
            }
        }
        panic!("wrong shape: {f:?}");
    }

    #[test]
    fn globally_desugars_through_duality() {
        let f = parse("P(>= 0.9) [G[0,10] up]").unwrap();
        let expect = StateFormula::prob_globally(
            CompareOp::Ge,
            0.9,
            Interval::upto(10.0),
            Interval::unbounded(),
            StateFormula::ap("up"),
        );
        assert_eq!(f, expect);
        // P(≤ 1−0.9)[tt U[0,10] ¬up].
        if let StateFormula::Prob { op, bound, path } = &f {
            assert_eq!(*op, CompareOp::Le);
            assert!((bound - 0.1).abs() < 1e-12);
            if let PathFormula::Until { rhs, .. } = path.as_ref() {
                assert_eq!(*rhs, StateFormula::ap("up").not());
                return;
            }
        }
        panic!("wrong shape: {f:?}");
    }

    #[test]
    fn dual_comparisons() {
        assert_eq!(CompareOp::Lt.dual(), CompareOp::Gt);
        assert_eq!(CompareOp::Le.dual(), CompareOp::Ge);
        assert_eq!(CompareOp::Gt.dual(), CompareOp::Lt);
        assert_eq!(CompareOp::Ge.dual(), CompareOp::Le);
    }

    #[test]
    fn point_intervals_parse() {
        // `[0,0]` is a legal (degenerate) bound: zero elapsed time / zero
        // accumulated reward. Downstream it produces trivial probabilities
        // with an exact (all-zero) error budget.
        let f = parse("P(>= 0.3) [a U[0,0][0,0] b]").unwrap();
        if let StateFormula::Prob { path, .. } = &f {
            if let PathFormula::Until { time, reward, .. } = path.as_ref() {
                assert_eq!(*time, Interval::new(0.0, 0.0).unwrap());
                assert_eq!(*reward, Interval::new(0.0, 0.0).unwrap());
            } else {
                panic!("wrong shape: {f:?}");
            }
        } else {
            panic!("wrong shape: {f:?}");
        }
        // Non-zero point intervals and the next operator take them too.
        let f = parse("P(< 0.5) [X[2,2][3,3] b]").unwrap();
        if let StateFormula::Prob { path, .. } = &f {
            if let PathFormula::Next { time, reward, .. } = path.as_ref() {
                assert_eq!(*time, Interval::new(2.0, 2.0).unwrap());
                assert_eq!(*reward, Interval::new(3.0, 3.0).unwrap());
                return;
            }
        }
        panic!("wrong shape: {f:?}");
    }

    #[test]
    fn inverted_intervals_are_rejected() {
        // `[3,1]` is empty under Definition 3.1 and must not parse.
        assert!(parse("P(>= 0.3) [a U[3,1] b]").is_err());
        assert!(parse("P(>= 0.3) [a U[0,3][5,2] b]").is_err());
    }

    #[test]
    fn f_and_g_remain_plain_propositions_outside_paths() {
        assert_eq!(parse("F").unwrap(), StateFormula::ap("F"));
        assert_eq!(
            parse("G && F").unwrap(),
            StateFormula::ap("G").and(StateFormula::ap("F"))
        );
    }
}
