//! Parsers for the `.tra`/`.lab`/`.rewr`/`.rewi` formats.

use mrmc_ctmc::{Ctmc, Labeling};
use mrmc_sparse::CooBuilder;

use super::format::{FormatError, FormatErrorKind};
use super::LoadError;
use crate::error::MrmError;
use crate::mrm::Mrm;
use crate::rewards::{ImpulseRewards, StateRewards};

/// The contents of the four model files, ready for assembly into an [`Mrm`].
#[derive(Debug, Clone)]
pub struct ModelFiles {
    /// Contents of the `.tra` file.
    pub tra: String,
    /// Contents of the `.lab` file.
    pub lab: String,
    /// Contents of the `.rewr` file.
    pub rewr: String,
    /// Contents of the `.rewi` file.
    pub rewi: String,
}

impl ModelFiles {
    /// Parse all four files and assemble the model.
    ///
    /// # Errors
    ///
    /// The first [`FormatError`] encountered, tagged with the file it came
    /// from through the supplied adapters, or an [`MrmError`] if the parsed
    /// pieces are inconsistent.
    pub(crate) fn assemble_with(
        &self,
        tra_err: impl FnOnce(FormatError) -> LoadError,
        lab_err: impl FnOnce(FormatError) -> LoadError,
        rewr_err: impl FnOnce(FormatError) -> LoadError,
        rewi_err: impl FnOnce(FormatError) -> LoadError,
    ) -> Result<Mrm, LoadError> {
        let (num_states, transitions) = parse_tra(&self.tra).map_err(tra_err)?;
        let labeling = parse_lab(&self.lab, num_states).map_err(lab_err)?;
        let state_rewards = parse_rewr(&self.rewr, num_states).map_err(rewr_err)?;
        let impulse_rewards = parse_rewi(&self.rewi, num_states).map_err(rewi_err)?;

        let mut b = CooBuilder::new(num_states, num_states);
        for &(from, to, rate) in &transitions {
            b.push(from, to, rate);
        }
        let rates = b.build().map_err(|e| {
            LoadError::Model(MrmError::Model(mrmc_ctmc::ModelError::NegativeEntry {
                from: 0,
                to: 0,
                value: match e {
                    mrmc_sparse::BuildError::NonFiniteValue { .. } => f64::NAN,
                    _ => 0.0,
                },
            }))
        })?;
        let ctmc = Ctmc::new(rates, labeling).map_err(MrmError::from)?;
        let rho = StateRewards::new(state_rewards)?;
        Ok(Mrm::new(ctmc, rho, impulse_rewards)?)
    }

    /// Parse and assemble, attributing format errors to file kinds by name
    /// only (convenience for in-memory use).
    ///
    /// # Errors
    ///
    /// The first format error encountered (tagged with the file kind), or a
    /// semantic model error.
    pub fn assemble(&self) -> Result<Mrm, LoadError> {
        let tag = |name: &'static str| {
            move |source: FormatError| LoadError::Format {
                path: name.into(),
                source,
            }
        };
        self.assemble_with(tag(".tra"), tag(".lab"), tag(".rewr"), tag(".rewi"))
    }
}

/// Strip `%` comments and trailing whitespace; `None` for blank lines.
fn clean(line: &str) -> Option<&str> {
    let line = match line.find('%') {
        Some(i) => &line[..i],
        None => line,
    };
    let line = line.trim();
    if line.is_empty() {
        None
    } else {
        Some(line)
    }
}

fn parse_usize(token: &str, line: usize) -> Result<usize, FormatError> {
    token.parse().map_err(|_| {
        FormatError::new(
            line,
            FormatErrorKind::BadNumber {
                token: token.to_string(),
            },
        )
    })
}

fn parse_f64(token: &str, line: usize) -> Result<f64, FormatError> {
    token.parse().map_err(|_| {
        FormatError::new(
            line,
            FormatErrorKind::BadNumber {
                token: token.to_string(),
            },
        )
    })
}

fn check_state(state: usize, num_states: usize, line: usize) -> Result<usize, FormatError> {
    if state == 0 || state > num_states {
        Err(FormatError::new(
            line,
            FormatErrorKind::StateOutOfRange {
                state,
                states: num_states,
            },
        ))
    } else {
        Ok(state - 1)
    }
}

/// The payload of a parsed `.tra` file: the state count and the 0-indexed
/// `(from, to, rate)` transitions.
pub type TraContents = (usize, Vec<(usize, usize, f64)>);

/// Parse a `.tra` file.
///
/// # Errors
///
/// [`FormatError`] with the offending line.
pub fn parse_tra(text: &str) -> Result<TraContents, FormatError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter_map(|(i, l)| clean(l).map(|c| (i + 1, c)));

    let (l1, states_line) = lines.next().ok_or_else(|| {
        FormatError::new(
            0,
            FormatErrorKind::BadHeader {
                expected: "STATES n",
            },
        )
    })?;
    let num_states = match states_line.split_whitespace().collect::<Vec<_>>()[..] {
        ["STATES", n] => parse_usize(n, l1)?,
        _ => {
            return Err(FormatError::new(
                l1,
                FormatErrorKind::BadHeader {
                    expected: "STATES n",
                },
            ))
        }
    };

    let (l2, trans_line) = lines.next().ok_or_else(|| {
        FormatError::new(
            0,
            FormatErrorKind::BadHeader {
                expected: "TRANSITIONS m",
            },
        )
    })?;
    let declared = match trans_line.split_whitespace().collect::<Vec<_>>()[..] {
        ["TRANSITIONS", m] => parse_usize(m, l2)?,
        _ => {
            return Err(FormatError::new(
                l2,
                FormatErrorKind::BadHeader {
                    expected: "TRANSITIONS m",
                },
            ))
        }
    };

    let mut transitions = Vec::with_capacity(declared);
    let mut seen = std::collections::HashSet::with_capacity(declared);
    for (ln, line) in lines {
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 3 {
            return Err(FormatError::new(
                ln,
                FormatErrorKind::WrongFieldCount {
                    expected: 3,
                    found: fields.len(),
                },
            ));
        }
        let from = check_state(parse_usize(fields[0], ln)?, num_states, ln)?;
        let to = check_state(parse_usize(fields[1], ln)?, num_states, ln)?;
        let rate = parse_f64(fields[2], ln)?;
        if !seen.insert((from, to)) {
            return Err(FormatError::new(
                ln,
                FormatErrorKind::DuplicateTransition {
                    from: from + 1,
                    to: to + 1,
                },
            ));
        }
        transitions.push((from, to, rate));
    }
    if transitions.len() != declared {
        return Err(FormatError::new(
            0,
            FormatErrorKind::CountMismatch {
                declared,
                found: transitions.len(),
            },
        ));
    }
    Ok((num_states, transitions))
}

/// Parse a `.lab` file into a labeling over `num_states` states.
///
/// # Errors
///
/// [`FormatError`] with the offending line; using an undeclared proposition
/// is an error, matching the original tool.
pub fn parse_lab(text: &str, num_states: usize) -> Result<Labeling, FormatError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter_map(|(i, l)| clean(l).map(|c| (i + 1, c)));

    // A fully empty file is an empty labeling.
    let Some((l1, first)) = lines.next() else {
        return Ok(Labeling::new(num_states));
    };
    if first != "#DECLARATION" {
        return Err(FormatError::new(
            l1,
            FormatErrorKind::BadHeader {
                expected: "#DECLARATION",
            },
        ));
    }

    let mut declared: Vec<String> = Vec::new();
    let mut saw_end = false;
    for (ln, line) in &mut lines {
        if line == "#END" {
            saw_end = true;
            break;
        }
        for ap in line.split_whitespace() {
            if declared.iter().any(|d| d == ap) {
                return Err(FormatError::new(
                    ln,
                    FormatErrorKind::DuplicateDeclaration { name: ap.into() },
                ));
            }
            declared.push(ap.to_string());
        }
    }
    if !saw_end {
        return Err(FormatError::new(
            0,
            FormatErrorKind::BadHeader { expected: "#END" },
        ));
    }

    let mut labeling = Labeling::new(num_states);
    for ap in &declared {
        labeling.declare(ap);
    }
    for (ln, line) in lines {
        let mut fields = line.split_whitespace();
        let state_tok = fields.next().expect("clean lines are non-empty");
        let state = check_state(parse_usize(state_tok, ln)?, num_states, ln)?;
        let rest: String = fields.collect::<Vec<_>>().join(" ");
        for ap in rest.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            if !declared.iter().any(|d| d == ap) {
                return Err(FormatError::new(
                    ln,
                    FormatErrorKind::UndeclaredProposition { name: ap.into() },
                ));
            }
            if labeling.has(state, ap) {
                return Err(FormatError::new(
                    ln,
                    FormatErrorKind::DuplicateLabel {
                        state: state + 1,
                        name: ap.into(),
                    },
                ));
            }
            labeling.add(state, ap);
        }
    }
    Ok(labeling)
}

/// Parse a `.rewr` file into a per-state reward vector (unspecified states
/// get reward zero).
///
/// # Errors
///
/// [`FormatError`] with the offending line.
pub fn parse_rewr(text: &str, num_states: usize) -> Result<Vec<f64>, FormatError> {
    let mut rewards = vec![0.0; num_states];
    let mut specified = vec![false; num_states];
    for (ln, line) in text
        .lines()
        .enumerate()
        .filter_map(|(i, l)| clean(l).map(|c| (i + 1, c)))
    {
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 2 {
            return Err(FormatError::new(
                ln,
                FormatErrorKind::WrongFieldCount {
                    expected: 2,
                    found: fields.len(),
                },
            ));
        }
        let state = check_state(parse_usize(fields[0], ln)?, num_states, ln)?;
        if specified[state] {
            return Err(FormatError::new(
                ln,
                FormatErrorKind::DuplicateReward { state: state + 1 },
            ));
        }
        specified[state] = true;
        rewards[state] = parse_f64(fields[1], ln)?;
    }
    Ok(rewards)
}

/// Parse a `.rewi` file into an impulse reward structure.
///
/// # Errors
///
/// [`FormatError`] with the offending line. Negative impulses are reported
/// when the model is assembled, not here.
pub fn parse_rewi(text: &str, num_states: usize) -> Result<ImpulseRewards, FormatError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter_map(|(i, l)| clean(l).map(|c| (i + 1, c)));

    // An empty .rewi file means "no impulse rewards".
    let Some((l1, header)) = lines.next() else {
        return Ok(ImpulseRewards::new());
    };
    let declared = match header.split_whitespace().collect::<Vec<_>>()[..] {
        ["TRANSITIONS", m] => parse_usize(m, l1)?,
        _ => {
            return Err(FormatError::new(
                l1,
                FormatErrorKind::BadHeader {
                    expected: "TRANSITIONS n",
                },
            ))
        }
    };

    let mut impulses = ImpulseRewards::new();
    let mut count = 0usize;
    let mut seen = std::collections::HashSet::new();
    for (ln, line) in lines {
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 3 {
            return Err(FormatError::new(
                ln,
                FormatErrorKind::WrongFieldCount {
                    expected: 3,
                    found: fields.len(),
                },
            ));
        }
        let from = check_state(parse_usize(fields[0], ln)?, num_states, ln)?;
        let to = check_state(parse_usize(fields[1], ln)?, num_states, ln)?;
        if !seen.insert((from, to)) {
            return Err(FormatError::new(
                ln,
                FormatErrorKind::DuplicateTransition {
                    from: from + 1,
                    to: to + 1,
                },
            ));
        }
        let value = parse_f64(fields[2], ln)?;
        if !(value.is_finite() && value >= 0.0) {
            return Err(FormatError::new(
                ln,
                FormatErrorKind::BadNumber {
                    token: fields[2].to_string(),
                },
            ));
        }
        impulses
            .set(from, to, value)
            .expect("validated non-negative finite");
        count += 1;
    }
    if count != declared {
        return Err(FormatError::new(
            0,
            FormatErrorKind::CountMismatch {
                declared,
                found: count,
            },
        ));
    }
    Ok(impulses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tra_happy_path() {
        let (n, ts) = parse_tra("STATES 3\nTRANSITIONS 2\n1 2 0.5\n3 1 2.0\n").unwrap();
        assert_eq!(n, 3);
        assert_eq!(ts, vec![(0, 1, 0.5), (2, 0, 2.0)]);
    }

    #[test]
    fn tra_comments_and_blanks_ignored() {
        let text = "% a model\nSTATES 2\n\nTRANSITIONS 1 % one\n1 2 1.0\n";
        let (n, ts) = parse_tra(text).unwrap();
        assert_eq!(n, 2);
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn tra_errors() {
        assert!(matches!(
            parse_tra("").unwrap_err().kind,
            FormatErrorKind::BadHeader { .. }
        ));
        assert!(matches!(
            parse_tra("STATES x\n").unwrap_err().kind,
            FormatErrorKind::BadNumber { .. }
        ));
        assert!(matches!(
            parse_tra("STATES 2\nTRANSITIONS 1\n1 2\n")
                .unwrap_err()
                .kind,
            FormatErrorKind::WrongFieldCount { .. }
        ));
        assert!(matches!(
            parse_tra("STATES 2\nTRANSITIONS 1\n1 5 1.0\n")
                .unwrap_err()
                .kind,
            FormatErrorKind::StateOutOfRange { state: 5, .. }
        ));
        assert!(matches!(
            parse_tra("STATES 2\nTRANSITIONS 1\n0 1 1.0\n")
                .unwrap_err()
                .kind,
            FormatErrorKind::StateOutOfRange { state: 0, .. }
        ));
        assert!(matches!(
            parse_tra("STATES 2\nTRANSITIONS 3\n1 2 1.0\n")
                .unwrap_err()
                .kind,
            FormatErrorKind::CountMismatch {
                declared: 3,
                found: 1
            }
        ));
    }

    #[test]
    fn tra_rejects_duplicate_transitions() {
        let e = parse_tra("STATES 2\nTRANSITIONS 2\n1 2 1.0\n1 2 3.0\n").unwrap_err();
        assert_eq!(e.line, 4);
        assert!(matches!(
            e.kind,
            FormatErrorKind::DuplicateTransition { from: 1, to: 2 }
        ));
    }

    #[test]
    fn lab_happy_path() {
        let l = parse_lab("#DECLARATION\nup down busy\n#END\n1 up\n2 down,busy\n", 2).unwrap();
        assert!(l.has(0, "up"));
        assert!(l.has(1, "down"));
        assert!(l.has(1, "busy"));
    }

    #[test]
    fn lab_multiline_declaration() {
        let l = parse_lab("#DECLARATION\nup\ndown\n#END\n1 up\n", 1).unwrap();
        assert!(l.has(0, "up"));
        let _ = l;
    }

    #[test]
    fn lab_errors() {
        assert!(matches!(
            parse_lab("1 up\n", 1).unwrap_err().kind,
            FormatErrorKind::BadHeader { .. }
        ));
        assert!(matches!(
            parse_lab("#DECLARATION\nup\n", 1).unwrap_err().kind,
            FormatErrorKind::BadHeader { expected: "#END" }
        ));
        assert!(matches!(
            parse_lab("#DECLARATION\nup\n#END\n1 mystery\n", 1)
                .unwrap_err()
                .kind,
            FormatErrorKind::UndeclaredProposition { .. }
        ));
        assert!(matches!(
            parse_lab("#DECLARATION\nup\n#END\n7 up\n", 1)
                .unwrap_err()
                .kind,
            FormatErrorKind::StateOutOfRange { .. }
        ));
    }

    #[test]
    fn lab_rejects_duplicate_declarations_and_labels() {
        let e = parse_lab("#DECLARATION\nup up\n#END\n", 1).unwrap_err();
        assert!(matches!(
            e.kind,
            FormatErrorKind::DuplicateDeclaration { ref name } if name == "up"
        ));
        let e = parse_lab("#DECLARATION\nup down\n#END\n1 up\n1 down,up\n", 1).unwrap_err();
        assert_eq!(e.line, 5);
        assert!(matches!(
            e.kind,
            FormatErrorKind::DuplicateLabel { state: 1, ref name } if name == "up"
        ));
    }

    #[test]
    fn lab_keeps_unused_declarations() {
        let l = parse_lab("#DECLARATION\nup spare\n#END\n1 up\n", 1).unwrap();
        assert_eq!(l.declared(), vec!["spare", "up"]);
        assert_eq!(l.all_propositions(), vec!["up"]);
    }

    #[test]
    fn rewr_defaults_to_zero() {
        let r = parse_rewr("2 5.5\n", 3).unwrap();
        assert_eq!(r, vec![0.0, 5.5, 0.0]);
    }

    #[test]
    fn rewr_errors() {
        assert!(matches!(
            parse_rewr("1 2 3\n", 2).unwrap_err().kind,
            FormatErrorKind::WrongFieldCount { .. }
        ));
        assert!(matches!(
            parse_rewr("1 abc\n", 2).unwrap_err().kind,
            FormatErrorKind::BadNumber { .. }
        ));
        let e = parse_rewr("1 2.0\n1 3.0\n", 2).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(matches!(
            e.kind,
            FormatErrorKind::DuplicateReward { state: 1 }
        ));
    }

    #[test]
    fn rewi_happy_and_empty() {
        let i = parse_rewi("TRANSITIONS 1\n1 2 4.0\n", 2).unwrap();
        assert_eq!(i.get(0, 1), 4.0);
        let empty = parse_rewi("", 2).unwrap();
        assert!(empty.is_empty());
        let zero = parse_rewi("TRANSITIONS 0\n", 2).unwrap();
        assert!(zero.is_empty());
    }

    #[test]
    fn rewi_errors() {
        assert!(matches!(
            parse_rewi("1 2 4.0\n", 2).unwrap_err().kind,
            FormatErrorKind::BadHeader { .. }
        ));
        assert!(matches!(
            parse_rewi("TRANSITIONS 1\n1 2 -4.0\n", 2).unwrap_err().kind,
            FormatErrorKind::BadNumber { .. }
        ));
        assert!(matches!(
            parse_rewi("TRANSITIONS 2\n1 2 4.0\n", 2).unwrap_err().kind,
            FormatErrorKind::CountMismatch { .. }
        ));
        assert!(matches!(
            parse_rewi("TRANSITIONS 2\n1 2 4.0\n1 2 4.0\n", 2)
                .unwrap_err()
                .kind,
            FormatErrorKind::DuplicateTransition { from: 1, to: 2 }
        ));
    }

    #[test]
    fn assemble_in_memory() {
        let files = ModelFiles {
            tra: "STATES 2\nTRANSITIONS 2\n1 2 1.0\n2 1 2.0\n".into(),
            lab: "#DECLARATION\na\n#END\n1 a\n".into(),
            rewr: "1 1.0\n".into(),
            rewi: "TRANSITIONS 1\n1 2 0.5\n".into(),
        };
        let m = files.assemble().unwrap();
        assert_eq!(m.num_states(), 2);
        assert_eq!(m.impulse_reward(0, 1), 0.5);
    }

    #[test]
    fn assemble_reports_file() {
        let files = ModelFiles {
            tra: "garbage".into(),
            lab: String::new(),
            rewr: String::new(),
            rewi: String::new(),
        };
        let e = files.assemble().unwrap_err();
        assert!(e.to_string().contains(".tra"));
    }
}
