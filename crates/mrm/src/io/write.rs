//! Writers emitting the model file formats (round-trip companions of the
//! parsers).

use std::fmt::Write as _;

use crate::mrm::Mrm;

/// Render the `.tra` file of a model (1-indexed states).
pub fn write_tra(mrm: &Mrm) -> String {
    let rates = mrm.ctmc().rates();
    let mut out = String::new();
    writeln!(out, "STATES {}", mrm.num_states()).expect("write to String");
    writeln!(out, "TRANSITIONS {}", rates.nnz()).expect("write to String");
    for (from, to, rate) in rates.iter() {
        writeln!(out, "{} {} {}", from + 1, to + 1, rate).expect("write to String");
    }
    out
}

/// Render the `.lab` file of a model.
pub fn write_lab(mrm: &Mrm) -> String {
    let labeling = mrm.labeling();
    let mut out = String::new();
    out.push_str("#DECLARATION\n");
    let props = labeling.declared();
    if !props.is_empty() {
        out.push_str(&props.join(" "));
        out.push('\n');
    }
    out.push_str("#END\n");
    for s in 0..mrm.num_states() {
        let aps: Vec<&str> = labeling.of_state(s).collect();
        if !aps.is_empty() {
            writeln!(out, "{} {}", s + 1, aps.join(",")).expect("write to String");
        }
    }
    out
}

/// Render the `.rewr` file of a model (zero rewards omitted).
pub fn write_rewr(mrm: &Mrm) -> String {
    let mut out = String::new();
    for s in 0..mrm.num_states() {
        let r = mrm.state_reward(s);
        if r != 0.0 {
            writeln!(out, "{} {}", s + 1, r).expect("write to String");
        }
    }
    out
}

/// Render the `.rewi` file of a model.
pub fn write_rewi(mrm: &Mrm) -> String {
    let mut out = String::new();
    writeln!(out, "TRANSITIONS {}", mrm.impulse_rewards().len()).expect("write to String");
    for (from, to, v) in mrm.impulse_rewards().iter() {
        writeln!(out, "{} {} {}", from + 1, to + 1, v).expect("write to String");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::parse::ModelFiles;
    use crate::mrm::test_models::wavelan;

    #[test]
    fn roundtrip_preserves_the_model() {
        let m = wavelan();
        let files = ModelFiles {
            tra: write_tra(&m),
            lab: write_lab(&m),
            rewr: write_rewr(&m),
            rewi: write_rewi(&m),
        };
        let back = files.assemble().unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tra_has_headers() {
        let m = wavelan();
        let t = write_tra(&m);
        assert!(t.starts_with("STATES 5\nTRANSITIONS 8\n"));
    }

    #[test]
    fn lab_declares_everything_used() {
        let m = wavelan();
        let l = write_lab(&m);
        assert!(l.contains("#DECLARATION"));
        assert!(l.contains("busy"));
        assert!(l.contains("#END"));
    }

    #[test]
    fn rewi_counts_match() {
        let m = wavelan();
        let i = write_rewi(&m);
        assert!(i.starts_with("TRANSITIONS 4\n"));
        assert_eq!(i.lines().count(), 5);
    }
}
