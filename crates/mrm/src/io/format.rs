//! Format errors for the model file parsers.

use std::error::Error;
use std::fmt;

/// What went wrong on a particular line of a model file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatErrorKind {
    /// A required header (`STATES n`, `TRANSITIONS m`, `#DECLARATION`,
    /// `#END`) was missing or malformed.
    BadHeader {
        /// What the parser expected to see.
        expected: &'static str,
    },
    /// A line did not have the expected number of fields.
    WrongFieldCount {
        /// Fields expected.
        expected: usize,
        /// Fields found.
        found: usize,
    },
    /// A field did not parse as a number.
    BadNumber {
        /// The offending token.
        token: String,
    },
    /// A state index was zero or exceeded the declared state count.
    StateOutOfRange {
        /// The offending (1-indexed) state.
        state: usize,
        /// Declared number of states.
        states: usize,
    },
    /// An undeclared atomic proposition was used.
    UndeclaredProposition {
        /// The offending proposition.
        name: String,
    },
    /// The declared transition count does not match the body.
    CountMismatch {
        /// Declared count.
        declared: usize,
        /// Lines actually present.
        found: usize,
    },
    /// A `(from, to)` transition pair occurred more than once (`.tra` or
    /// `.rewi`). Earlier versions silently kept the last entry; duplicates
    /// almost always indicate a generator bug, so they are rejected.
    DuplicateTransition {
        /// Source state (1-indexed, as written in the file).
        from: usize,
        /// Target state (1-indexed, as written in the file).
        to: usize,
    },
    /// A state received a reward value more than once in a `.rewr` file.
    DuplicateReward {
        /// The state (1-indexed, as written in the file).
        state: usize,
    },
    /// A state was assigned the same atomic proposition more than once in
    /// a `.lab` file.
    DuplicateLabel {
        /// The state (1-indexed, as written in the file).
        state: usize,
        /// The repeated proposition.
        name: String,
    },
    /// An atomic proposition appeared more than once in the `#DECLARATION`
    /// block of a `.lab` file.
    DuplicateDeclaration {
        /// The repeated proposition.
        name: String,
    },
}

/// A parse error with its (1-based) line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError {
    /// 1-based line number of the offending line (0 for end-of-file
    /// conditions).
    pub line: usize,
    /// What went wrong.
    pub kind: FormatErrorKind,
}

impl FormatError {
    pub(crate) fn new(line: usize, kind: FormatErrorKind) -> Self {
        FormatError { line, kind }
    }
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            FormatErrorKind::BadHeader { expected } => {
                write!(f, "expected header `{expected}`")
            }
            FormatErrorKind::WrongFieldCount { expected, found } => {
                write!(f, "expected {expected} fields, found {found}")
            }
            FormatErrorKind::BadNumber { token } => {
                write!(f, "`{token}` is not a valid number")
            }
            FormatErrorKind::StateOutOfRange { state, states } => {
                write!(f, "state {state} out of range 1..={states}")
            }
            FormatErrorKind::UndeclaredProposition { name } => {
                write!(f, "atomic proposition `{name}` was not declared")
            }
            FormatErrorKind::CountMismatch { declared, found } => {
                write!(f, "declared {declared} transitions but found {found}")
            }
            FormatErrorKind::DuplicateTransition { from, to } => {
                write!(f, "duplicate transition entry {from} -> {to}")
            }
            FormatErrorKind::DuplicateReward { state } => {
                write!(f, "duplicate reward entry for state {state}")
            }
            FormatErrorKind::DuplicateLabel { state, name } => {
                write!(f, "state {state} is labeled `{name}` more than once")
            }
            FormatErrorKind::DuplicateDeclaration { name } => {
                write!(f, "atomic proposition `{name}` declared more than once")
            }
        }
    }
}

impl Error for FormatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line_and_kind() {
        let e = FormatError::new(
            7,
            FormatErrorKind::BadNumber {
                token: "abc".into(),
            },
        );
        let s = e.to_string();
        assert!(s.contains("line 7"));
        assert!(s.contains("abc"));

        let e = FormatError::new(
            1,
            FormatErrorKind::BadHeader {
                expected: "STATES n",
            },
        );
        assert!(e.to_string().contains("STATES n"));

        let e = FormatError::new(
            2,
            FormatErrorKind::StateOutOfRange {
                state: 9,
                states: 3,
            },
        );
        assert!(e.to_string().contains("1..=3"));

        let e = FormatError::new(
            3,
            FormatErrorKind::UndeclaredProposition { name: "ap1".into() },
        );
        assert!(e.to_string().contains("ap1"));

        let e = FormatError::new(
            4,
            FormatErrorKind::WrongFieldCount {
                expected: 3,
                found: 2,
            },
        );
        assert!(e.to_string().contains("3 fields"));

        let e = FormatError::new(
            0,
            FormatErrorKind::CountMismatch {
                declared: 5,
                found: 4,
            },
        );
        assert!(e.to_string().contains("declared 5"));

        let e = FormatError::new(5, FormatErrorKind::DuplicateTransition { from: 1, to: 2 });
        assert!(e.to_string().contains("duplicate transition entry 1 -> 2"));

        let e = FormatError::new(6, FormatErrorKind::DuplicateReward { state: 3 });
        assert!(e.to_string().contains("duplicate reward entry for state 3"));

        let e = FormatError::new(
            7,
            FormatErrorKind::DuplicateLabel {
                state: 2,
                name: "up".into(),
            },
        );
        assert!(e.to_string().contains("`up` more than once"));

        let e = FormatError::new(
            8,
            FormatErrorKind::DuplicateDeclaration { name: "up".into() },
        );
        assert!(e.to_string().contains("declared more than once"));
    }
}
