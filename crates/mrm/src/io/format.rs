//! Format errors for the model file parsers.

use std::error::Error;
use std::fmt;

/// What went wrong on a particular line of a model file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatErrorKind {
    /// A required header (`STATES n`, `TRANSITIONS m`, `#DECLARATION`,
    /// `#END`) was missing or malformed.
    BadHeader {
        /// What the parser expected to see.
        expected: &'static str,
    },
    /// A line did not have the expected number of fields.
    WrongFieldCount {
        /// Fields expected.
        expected: usize,
        /// Fields found.
        found: usize,
    },
    /// A field did not parse as a number.
    BadNumber {
        /// The offending token.
        token: String,
    },
    /// A state index was zero or exceeded the declared state count.
    StateOutOfRange {
        /// The offending (1-indexed) state.
        state: usize,
        /// Declared number of states.
        states: usize,
    },
    /// An undeclared atomic proposition was used.
    UndeclaredProposition {
        /// The offending proposition.
        name: String,
    },
    /// The declared transition count does not match the body.
    CountMismatch {
        /// Declared count.
        declared: usize,
        /// Lines actually present.
        found: usize,
    },
}

/// A parse error with its (1-based) line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError {
    /// 1-based line number of the offending line (0 for end-of-file
    /// conditions).
    pub line: usize,
    /// What went wrong.
    pub kind: FormatErrorKind,
}

impl FormatError {
    pub(crate) fn new(line: usize, kind: FormatErrorKind) -> Self {
        FormatError { line, kind }
    }
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            FormatErrorKind::BadHeader { expected } => {
                write!(f, "expected header `{expected}`")
            }
            FormatErrorKind::WrongFieldCount { expected, found } => {
                write!(f, "expected {expected} fields, found {found}")
            }
            FormatErrorKind::BadNumber { token } => {
                write!(f, "`{token}` is not a valid number")
            }
            FormatErrorKind::StateOutOfRange { state, states } => {
                write!(f, "state {state} out of range 1..={states}")
            }
            FormatErrorKind::UndeclaredProposition { name } => {
                write!(f, "atomic proposition `{name}` was not declared")
            }
            FormatErrorKind::CountMismatch { declared, found } => {
                write!(f, "declared {declared} transitions but found {found}")
            }
        }
    }
}

impl Error for FormatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line_and_kind() {
        let e = FormatError::new(
            7,
            FormatErrorKind::BadNumber {
                token: "abc".into(),
            },
        );
        let s = e.to_string();
        assert!(s.contains("line 7"));
        assert!(s.contains("abc"));

        let e = FormatError::new(
            1,
            FormatErrorKind::BadHeader {
                expected: "STATES n",
            },
        );
        assert!(e.to_string().contains("STATES n"));

        let e = FormatError::new(
            2,
            FormatErrorKind::StateOutOfRange {
                state: 9,
                states: 3,
            },
        );
        assert!(e.to_string().contains("1..=3"));

        let e = FormatError::new(
            3,
            FormatErrorKind::UndeclaredProposition { name: "ap1".into() },
        );
        assert!(e.to_string().contains("ap1"));

        let e = FormatError::new(
            4,
            FormatErrorKind::WrongFieldCount {
                expected: 3,
                found: 2,
            },
        );
        assert!(e.to_string().contains("3 fields"));

        let e = FormatError::new(
            0,
            FormatErrorKind::CountMismatch {
                declared: 5,
                found: 4,
            },
        );
        assert!(e.to_string().contains("declared 5"));
    }
}
