//! Graphviz (DOT) export of reward models, rendering the labeled directed
//! graphs the thesis uses to present MRMs (Figures 2.1, 3.1): vertices
//! carry the label set and state reward, edges carry the rate and — when
//! non-zero — the impulse reward.

use std::fmt::Write as _;

use crate::mrm::Mrm;

/// Render `mrm` as a Graphviz digraph.
///
/// States are shown 1-indexed to match the model file formats; a state node
/// reads `s1\n{off} ρ=0`, an edge reads `0.1` or `0.1, ι=0.02`.
pub fn write_dot(mrm: &Mrm) -> String {
    let mut out = String::from("digraph mrm {\n");
    out.push_str("  rankdir=LR;\n  node [shape=circle];\n");
    for s in 0..mrm.num_states() {
        let labels: Vec<&str> = mrm.labeling().of_state(s).collect();
        let _ = writeln!(
            out,
            "  s{} [label=\"s{}\\n{{{}}} \u{3c1}={}\"];",
            s + 1,
            s + 1,
            labels.join(","),
            mrm.state_reward(s)
        );
    }
    for (from, to, rate) in mrm.ctmc().rates().iter() {
        let impulse = mrm.impulse_reward(from, to);
        if impulse > 0.0 {
            let _ = writeln!(
                out,
                "  s{} -> s{} [label=\"{}, \u{3b9}={}\"];",
                from + 1,
                to + 1,
                rate,
                impulse
            );
        } else {
            let _ = writeln!(out, "  s{} -> s{} [label=\"{}\"];", from + 1, to + 1, rate);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrm::test_models::wavelan;

    #[test]
    fn wavelan_dot_contains_structure() {
        let dot = write_dot(&wavelan());
        assert!(dot.starts_with("digraph mrm {"));
        assert!(dot.ends_with("}\n"));
        // All five states, with labels and rewards.
        for s in 1..=5 {
            assert!(dot.contains(&format!("s{s} [label=")), "{dot}");
        }
        assert!(dot.contains("{idle} ρ=1319"));
        assert!(dot.contains("{busy,receive} ρ=1675"));
        // Rates and impulses on edges.
        assert!(dot.contains("s3 -> s4 [label=\"1.5, ι=0.42545\"]"));
        assert!(dot.contains("s4 -> s3 [label=\"10\"]"));
        // Exactly 8 edges.
        assert_eq!(dot.matches(" -> ").count(), 8);
    }

    #[test]
    fn dot_handles_unlabeled_reward_free_models() {
        let mut b = mrmc_ctmc::CtmcBuilder::new(2);
        b.transition(0, 1, 1.0);
        let m = crate::Mrm::without_rewards(b.build().unwrap());
        let dot = write_dot(&m);
        assert!(dot.contains("s1 [label=\"s1\\n{} ρ=0\"]"));
        assert!(dot.contains("s1 -> s2 [label=\"1\"]"));
    }
}
