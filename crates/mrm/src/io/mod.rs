//! The thesis tool's model file formats (Appendix: Usage Manual).
//!
//! A model is specified by four files:
//!
//! * `.tra` — transitions: `STATES n`, `TRANSITIONS m`, then `from to rate`
//!   triples;
//! * `.lab` — labels: a `#DECLARATION … #END` block of atomic propositions,
//!   then `state ap[,ap]*` lines;
//! * `.rewr` — state rewards: `state reward` lines;
//! * `.rewi` — impulse rewards: `TRANSITIONS n`, then `from to reward`
//!   triples.
//!
//! States are **1-indexed** in all files, as in the original tool; the
//! in-memory representation is 0-indexed. Blank lines and `%`-comments are
//! ignored. Writers producing the same formats are provided for
//! round-trips, plus a Graphviz export ([`write_dot`]) rendering the
//! thesis' labeled-directed-graph presentation.

mod dot;
mod format;
mod parse;
mod write;

pub use dot::write_dot;
pub use format::{FormatError, FormatErrorKind};
pub use parse::{parse_lab, parse_rewi, parse_rewr, parse_tra, ModelFiles};
pub use write::{write_lab, write_rewi, write_rewr, write_tra};

use std::path::Path;

use crate::error::MrmError;
use crate::mrm::Mrm;

/// An error raised while loading a model from its four files.
#[derive(Debug)]
pub enum LoadError {
    /// Reading a file failed.
    Io {
        /// The file that could not be read.
        path: std::path::PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A file had invalid contents.
    Format {
        /// The file that failed to parse.
        path: std::path::PathBuf,
        /// The parse error.
        source: FormatError,
    },
    /// The parsed pieces do not form a valid MRM.
    Model(MrmError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io { path, source } => {
                write!(f, "cannot read {}: {source}", path.display())
            }
            LoadError::Format { path, source } => {
                write!(f, "cannot parse {}: {source}", path.display())
            }
            LoadError::Model(e) => write!(f, "invalid model: {e}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io { source, .. } => Some(source),
            LoadError::Format { source, .. } => Some(source),
            LoadError::Model(e) => Some(e),
        }
    }
}

impl From<MrmError> for LoadError {
    fn from(e: MrmError) -> Self {
        LoadError::Model(e)
    }
}

/// Load an MRM from the four files of the thesis' tool.
///
/// # Errors
///
/// [`LoadError`] distinguishing I/O failures, per-file format errors (with
/// line numbers), and semantic model errors.
pub fn load_model(
    tra: impl AsRef<Path>,
    lab: impl AsRef<Path>,
    rewr: impl AsRef<Path>,
    rewi: impl AsRef<Path>,
) -> Result<Mrm, LoadError> {
    fn read(path: &Path) -> Result<String, LoadError> {
        std::fs::read_to_string(path).map_err(|source| LoadError::Io {
            path: path.to_path_buf(),
            source,
        })
    }
    fn fmt_err(path: &Path) -> impl FnOnce(FormatError) -> LoadError + '_ {
        move |source| LoadError::Format {
            path: path.to_path_buf(),
            source,
        }
    }

    let tra = tra.as_ref();
    let lab = lab.as_ref();
    let rewr = rewr.as_ref();
    let rewi = rewi.as_ref();

    let files = ModelFiles {
        tra: read(tra)?,
        lab: read(lab)?,
        rewr: read(rewr)?,
        rewi: read(rewi)?,
    };
    files.assemble_with(fmt_err(tra), fmt_err(lab), fmt_err(rewr), fmt_err(rewi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_model_from_disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mrmc-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let write = |name: &str, content: &str| {
            let p = dir.join(name);
            std::fs::write(&p, content).unwrap();
            p
        };
        let tra = write("m.tra", "STATES 2\nTRANSITIONS 2\n1 2 0.5\n2 1 1.5\n");
        let lab = write("m.lab", "#DECLARATION\nup down\n#END\n1 up\n2 down\n");
        let rewr = write("m.rewr", "1 2.0\n2 0.0\n");
        let rewi = write("m.rewi", "TRANSITIONS 1\n1 2 3.5\n");

        let m = load_model(&tra, &lab, &rewr, &rewi).unwrap();
        assert_eq!(m.num_states(), 2);
        assert_eq!(m.ctmc().rates().get(0, 1), 0.5);
        assert!(m.labeling().has(1, "down"));
        assert_eq!(m.state_reward(0), 2.0);
        assert_eq!(m.impulse_reward(0, 1), 3.5);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_reports_io_error() {
        let e = load_model(
            "/nonexistent/x.tra",
            "/nonexistent/x.lab",
            "/nonexistent/x.rewr",
            "/nonexistent/x.rewi",
        )
        .unwrap_err();
        assert!(matches!(e, LoadError::Io { .. }));
        assert!(e.to_string().contains("x.tra"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
