//! State-space partitions, the carrier of lumping quotients.
//!
//! A [`Partition`] groups the `n` states of a model into `k ≤ n` *blocks*.
//! It is plain data: nothing here decides whether a partition is a valid
//! lumping — that is the job of the certificate verifier in
//! `mrmc-analysis` — but the representation is canonical (blocks are
//! numbered `0..k` in order of their lowest member), so two partitions
//! describing the same grouping compare equal.

use std::fmt;

/// A partition of the state space `0..n` into blocks `0..k`.
///
/// Blocks are canonically numbered by first appearance: block `0` contains
/// state `0`, and block indices increase with the lowest state index of
/// each block. The *representative* of a block is its lowest member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `block_of[s]` is the block index of state `s`, in `0..num_blocks`.
    block_of: Vec<usize>,
    /// Lowest member of each block, indexed by block.
    representatives: Vec<usize>,
}

impl Partition {
    /// Build a partition from an arbitrary per-state block assignment.
    ///
    /// The assignment may use any `usize` keys; they are renumbered
    /// canonically (by first appearance) so that equal groupings yield
    /// equal partitions.
    pub fn from_assignment(assignment: &[usize]) -> Self {
        let mut renumber: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let mut block_of = Vec::with_capacity(assignment.len());
        let mut representatives = Vec::new();
        for (state, &key) in assignment.iter().enumerate() {
            let next = renumber.len();
            let block = *renumber.entry(key).or_insert(next);
            if block == representatives.len() {
                representatives.push(state);
            }
            block_of.push(block);
        }
        Partition {
            block_of,
            representatives,
        }
    }

    /// The discrete partition: every state in its own block.
    pub fn identity(num_states: usize) -> Self {
        Partition {
            block_of: (0..num_states).collect(),
            representatives: (0..num_states).collect(),
        }
    }

    /// Number of states partitioned.
    pub fn num_states(&self) -> usize {
        self.block_of.len()
    }

    /// Number of blocks `k`.
    pub fn num_blocks(&self) -> usize {
        self.representatives.len()
    }

    /// The block index of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn block_of(&self, state: usize) -> usize {
        self.block_of[state]
    }

    /// The per-state block assignment, canonical numbering.
    pub fn assignment(&self) -> &[usize] {
        &self.block_of
    }

    /// The lowest member of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of bounds.
    pub fn representative(&self, block: usize) -> usize {
        self.representatives[block]
    }

    /// `true` when every state is its own block (no reduction).
    pub fn is_identity(&self) -> bool {
        self.num_blocks() == self.num_states()
    }

    /// The members of every block, in state order.
    pub fn blocks(&self) -> Vec<Vec<usize>> {
        let mut blocks = vec![Vec::new(); self.num_blocks()];
        for (state, &b) in self.block_of.iter().enumerate() {
            blocks[b].push(state);
        }
        blocks
    }

    /// Lift a per-block vector back to a per-state vector: state `s`
    /// receives the value of its block.
    ///
    /// # Panics
    ///
    /// Panics if `per_block.len() != self.num_blocks()`.
    pub fn lift<T: Clone>(&self, per_block: &[T]) -> Vec<T> {
        assert_eq!(
            per_block.len(),
            self.num_blocks(),
            "per-block vector length must match the block count"
        );
        self.block_of
            .iter()
            .map(|&b| per_block[b].clone())
            .collect()
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states in {} blocks",
            self.num_states(),
            self.num_blocks()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_renumbering() {
        // Keys 7, 3, 7, 3, 9 become blocks 0, 1, 0, 1, 2.
        let p = Partition::from_assignment(&[7, 3, 7, 3, 9]);
        assert_eq!(p.assignment(), &[0, 1, 0, 1, 2]);
        assert_eq!(p.num_states(), 5);
        assert_eq!(p.num_blocks(), 3);
        assert_eq!(p.representative(0), 0);
        assert_eq!(p.representative(1), 1);
        assert_eq!(p.representative(2), 4);
        // The same grouping under different keys is the same partition.
        assert_eq!(p, Partition::from_assignment(&[0, 5, 0, 5, 1]));
    }

    #[test]
    fn identity_partition() {
        let p = Partition::identity(3);
        assert!(p.is_identity());
        assert_eq!(p.num_blocks(), 3);
        assert_eq!(p.blocks(), vec![vec![0], vec![1], vec![2]]);
        assert!(!Partition::from_assignment(&[0, 0, 1]).is_identity());
    }

    #[test]
    fn blocks_list_members_in_state_order() {
        let p = Partition::from_assignment(&[0, 1, 0, 2, 1]);
        assert_eq!(p.blocks(), vec![vec![0, 2], vec![1, 4], vec![3]]);
    }

    #[test]
    fn lift_replicates_block_values() {
        let p = Partition::from_assignment(&[0, 1, 0, 1]);
        assert_eq!(p.lift(&[0.25, 0.75]), vec![0.25, 0.75, 0.25, 0.75]);
        assert_eq!(p.lift(&[true, false]), vec![true, false, true, false]);
    }

    #[test]
    #[should_panic(expected = "per-block vector length")]
    fn lift_checks_length() {
        Partition::from_assignment(&[0, 0]).lift(&[1.0, 2.0]);
    }

    #[test]
    fn empty_partition() {
        let p = Partition::from_assignment(&[]);
        assert_eq!(p.num_states(), 0);
        assert_eq!(p.num_blocks(), 0);
        assert!(p.is_identity());
    }
}
