//! The uniformized MRM `M^u = (S, P, Λ, Label, ρ, ι)` (Definition 4.2).

use mrmc_ctmc::Labeling;
use mrmc_sparse::CsrMatrix;

use crate::error::MrmError;
use crate::mrm::Mrm;

/// A uniformized Markov reward model: the uniformized DTMC of the underlying
/// chain together with the (unchanged) reward structures, with impulse
/// rewards pre-aligned to the transition matrix for fast iteration during
/// path generation.
///
/// Self-loops introduced by uniformization carry no impulse reward — they
/// model continued residence, not a transition. Genuine self-loops of the
/// source model cannot carry impulses either (Definition 3.1), so every
/// diagonal impulse is zero.
#[derive(Debug, Clone, PartialEq)]
pub struct UniformizedMrm {
    probs: CsrMatrix,
    lambda: f64,
    state_rewards: Vec<f64>,
    /// `impulses[k]` belongs to the `k`-th stored entry of `probs`,
    /// enumerated row by row.
    impulses: Vec<f64>,
    /// Prefix offsets into `impulses`, one per state (plus a sentinel).
    row_offsets: Vec<usize>,
    labeling: Labeling,
}

impl UniformizedMrm {
    /// Uniformize `mrm` with the given rate (or `1.02 · max E(s)` when
    /// `None`; see [`mrmc_ctmc::Ctmc::uniformized`]).
    ///
    /// # Errors
    ///
    /// Propagates invalid uniformization rates.
    pub fn new(mrm: &Mrm, lambda: Option<f64>) -> Result<Self, MrmError> {
        let (dtmc, lambda) = mrm.ctmc().uniformized(lambda)?;
        let probs = dtmc.probabilities().clone();
        let mut impulses = Vec::with_capacity(probs.nnz());
        let mut row_offsets = Vec::with_capacity(probs.nrows() + 1);
        row_offsets.push(0);
        for s in 0..probs.nrows() {
            for (t, _) in probs.row(s) {
                impulses.push(if t == s {
                    0.0
                } else {
                    mrm.impulse_reward(s, t)
                });
            }
            row_offsets.push(impulses.len());
        }
        Ok(UniformizedMrm {
            probs,
            lambda,
            state_rewards: mrm.state_rewards().as_slice().to_vec(),
            impulses,
            row_offsets,
            labeling: mrm.labeling().clone(),
        })
    }

    /// The uniformization rate `Λ` of the associated Poisson process.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The one-step probability matrix `P`.
    pub fn probabilities(&self) -> &CsrMatrix {
        &self.probs
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.probs.nrows()
    }

    /// `ρ(state)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn state_reward(&self, state: usize) -> f64 {
        self.state_rewards[state]
    }

    /// All state rewards.
    pub fn state_rewards(&self) -> &[f64] {
        &self.state_rewards
    }

    /// The labeling.
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// Iterate over the outgoing transitions of `state` as
    /// `(target, probability, impulse reward)` triples.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn transitions(&self, state: usize) -> impl Iterator<Item = (usize, f64, f64)> + '_ {
        let offset = self.row_offsets[state];
        self.probs
            .row(state)
            .enumerate()
            .map(move |(k, (t, p))| (t, p, self.impulses[offset + k]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrm::test_models::wavelan;

    #[test]
    fn example_4_2_probabilities_and_impulses() {
        let m = wavelan();
        let u = UniformizedMrm::new(&m, Some(15.0)).unwrap();
        assert_eq!(u.lambda(), 15.0);
        assert_eq!(u.num_states(), 5);
        assert_eq!(u.state_reward(2), 1319.0);

        // Transitions of state 2 (the idle state): self-loop carries no
        // impulse, the jumps to busy states keep theirs.
        let ts: Vec<(usize, f64, f64)> = u.transitions(2).collect();
        assert_eq!(ts.len(), 4);
        let to_1 = ts.iter().find(|t| t.0 == 1).unwrap();
        assert!((to_1.1 - 0.8).abs() < 1e-12);
        assert_eq!(to_1.2, 0.0);
        let to_2 = ts.iter().find(|t| t.0 == 2).unwrap();
        assert!((to_2.1 - 0.05).abs() < 1e-12);
        assert_eq!(to_2.2, 0.0);
        let to_3 = ts.iter().find(|t| t.0 == 3).unwrap();
        assert!((to_3.1 - 0.1).abs() < 1e-12);
        assert_eq!(to_3.2, 0.42545);
        let to_4 = ts.iter().find(|t| t.0 == 4).unwrap();
        assert!((to_4.1 - 0.05).abs() < 1e-12);
        assert_eq!(to_4.2, 0.36195);
    }

    #[test]
    fn transition_probabilities_sum_to_one() {
        let m = wavelan();
        let u = UniformizedMrm::new(&m, None).unwrap();
        for s in 0..u.num_states() {
            let total: f64 = u.transitions(s).map(|(_, p, _)| p).sum();
            assert!((total - 1.0).abs() < 1e-12, "state {s}");
        }
    }

    #[test]
    fn state_without_self_loop_at_exact_lambda() {
        // State 4 has E = Λ = 15: no self-loop in the uniformized chain.
        let m = wavelan();
        let u = UniformizedMrm::new(&m, Some(15.0)).unwrap();
        let ts: Vec<(usize, f64, f64)> = u.transitions(4).collect();
        assert_eq!(ts, vec![(2, 1.0, 0.0)]);
    }

    #[test]
    fn invalid_lambda_propagates() {
        let m = wavelan();
        assert!(UniformizedMrm::new(&m, Some(1.0)).is_err());
    }

    #[test]
    fn impulses_align_with_matrix_entries() {
        let m = wavelan();
        let u = UniformizedMrm::new(&m, None).unwrap();
        for s in 0..u.num_states() {
            for (t, p, imp) in u.transitions(s) {
                assert!(p > 0.0);
                if t == s {
                    assert_eq!(imp, 0.0);
                } else {
                    assert_eq!(imp, m.impulse_reward(s, t), "{s} -> {t}");
                }
            }
        }
    }
}
