//! Markov reward models with state-based *and* impulse rewards.
//!
//! This crate implements Chapter 3 of *Model Checking Markov Reward Models
//! with Impulse Rewards*:
//!
//! * [`Mrm`] — the model `M = ((S, R, Label), ρ, ι)` of Definition 3.1,
//!   a labeled CTMC augmented with a state reward structure `ρ` and an
//!   impulse reward structure `ι`;
//! * [`TimedPath`] — timed paths with the occupancy function `σ@t` and the
//!   accumulated reward `y_σ(t)` of Definition 3.3;
//! * [`transform::make_absorbing`] — the `M[Φ]` transformation of
//!   Definition 4.1 that underlies the until algorithms;
//! * [`UniformizedMrm`] — the uniformized MRM of Definition 4.2 used by the
//!   path-exploration engine;
//! * [`io`] — the `.tra`/`.lab`/`.rewr`/`.rewi` file formats of the thesis'
//!   tool.
//!
//! # Example
//!
//! ```
//! use mrmc_ctmc::CtmcBuilder;
//! use mrmc_mrm::{ImpulseRewards, Mrm, StateRewards};
//!
//! let mut b = CtmcBuilder::new(2);
//! b.transition(0, 1, 1.0).transition(1, 0, 2.0);
//! let ctmc = b.build()?;
//!
//! let rho = StateRewards::new(vec![3.0, 0.5])?;
//! let mut iota = ImpulseRewards::new();
//! iota.set(0, 1, 10.0)?;
//! let mrm = Mrm::new(ctmc, rho, iota)?;
//! assert_eq!(mrm.state_reward(0), 3.0);
//! assert_eq!(mrm.impulse_reward(0, 1), 10.0);
//! assert_eq!(mrm.impulse_reward(1, 0), 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod io;
mod mrm;
mod partition;
mod path;
mod rewards;
pub mod transform;
mod uniformized;

pub use error::{MrmError, PathError};
pub use mrm::Mrm;
pub use partition::Partition;
pub use path::TimedPath;
pub use rewards::{ImpulseRewards, StateRewards};
pub use uniformized::UniformizedMrm;
