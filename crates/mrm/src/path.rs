//! Timed paths in an MRM (Definition 3.3): the occupancy function `σ@t` and
//! the accumulated reward `y_σ(t)`.

use crate::error::PathError;
use crate::mrm::Mrm;

/// A (finite prefix of a) timed path `σ = s_0 →^{t_0} s_1 →^{t_1} …`.
///
/// The path stores a sojourn time for every state except the last; the final
/// state is treated as occupied forever (`t_n = ∞`), which matches both
/// finite paths ending in an absorbing state and queries below the recorded
/// horizon on longer paths.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedPath {
    states: Vec<usize>,
    sojourns: Vec<f64>,
    cumulative: Vec<f64>,
}

impl TimedPath {
    /// Build a path from its state sequence and per-state sojourn times.
    ///
    /// # Errors
    ///
    /// * [`PathError::Empty`] — no states;
    /// * [`PathError::LengthMismatch`] — `sojourns.len() != states.len() - 1`;
    /// * [`PathError::InvalidSojourn`] — a sojourn that is not strictly
    ///   positive and finite.
    pub fn new(states: Vec<usize>, sojourns: Vec<f64>) -> Result<Self, PathError> {
        if states.is_empty() {
            return Err(PathError::Empty);
        }
        if sojourns.len() != states.len() - 1 {
            return Err(PathError::LengthMismatch {
                states: states.len(),
                sojourns: sojourns.len(),
            });
        }
        for (index, &value) in sojourns.iter().enumerate() {
            if !(value.is_finite() && value > 0.0) {
                return Err(PathError::InvalidSojourn { index, value });
            }
        }
        let mut cumulative = Vec::with_capacity(sojourns.len() + 1);
        let mut acc = 0.0;
        cumulative.push(0.0);
        for &s in &sojourns {
            acc += s;
            cumulative.push(acc);
        }
        Ok(TimedPath {
            states,
            sojourns,
            cumulative,
        })
    }

    /// Check that every step of the path is an actual transition
    /// (`R(σ[i], σ[i+1]) > 0`) of `mrm`.
    ///
    /// # Errors
    ///
    /// [`PathError::MissingTransition`] naming the first impossible step.
    pub fn validate_in(&self, mrm: &Mrm) -> Result<(), PathError> {
        for w in self.states.windows(2) {
            if mrm.ctmc().rates().get(w[0], w[1]) <= 0.0 {
                return Err(PathError::MissingTransition {
                    from: w[0],
                    to: w[1],
                });
            }
        }
        Ok(())
    }

    /// `σ[i]`, the `(i+1)`-st state on the path.
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds the recorded prefix.
    pub fn state(&self, i: usize) -> usize {
        self.states[i]
    }

    /// Number of recorded states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` when the path records a single state and no transitions.
    pub fn is_empty(&self) -> bool {
        false // a valid path always has at least one state
    }

    /// The last recorded state, `last(σ)`.
    pub fn last_state(&self) -> usize {
        *self.states.last().expect("paths are non-empty")
    }

    /// The index `i` with `σ@t = σ[i]`: the state occupied at time `t`
    /// (Definition 3.3). `t = 0` is resolved to the initial state.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative or non-finite.
    pub fn index_at(&self, t: f64) -> usize {
        assert!(
            t.is_finite() && t >= 0.0,
            "time must be finite and non-negative"
        );
        if t == 0.0 {
            return 0;
        }
        // Largest i with cumulative[i] < t (cumulative[0] = 0), capped at the
        // final state which absorbs the remainder. At an exact boundary
        // Σ_{j≤i} t_j = t the definition assigns the earlier state.
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&t).expect("finite"))
        {
            Ok(i) => (i - 1).min(self.states.len() - 1),
            Err(i) => (i - 1).min(self.states.len() - 1),
        }
    }

    /// `σ@t`, the state occupied at time `t`.
    pub fn state_at(&self, t: f64) -> usize {
        self.states[self.index_at(t)]
    }

    /// The accumulated reward `y_σ(t)` of Definition 3.3: rate rewards for
    /// completed sojourns, the partial sojourn in the current state, and the
    /// impulse rewards of all transitions taken strictly before `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative or non-finite.
    pub fn accumulated_reward(&self, mrm: &Mrm, t: f64) -> f64 {
        let i = self.index_at(t);
        let mut y = mrm.state_reward(self.states[i]) * (t - self.cumulative[i]);
        for j in 0..i {
            y += mrm.state_reward(self.states[j]) * self.sojourns[j];
            y += mrm.impulse_reward(self.states[j], self.states[j + 1]);
        }
        y
    }

    /// The recorded state sequence.
    pub fn states(&self) -> &[usize] {
        &self.states
    }

    /// The recorded sojourn times (one per state except the last).
    pub fn sojourns(&self) -> &[f64] {
        &self.sojourns
    }

    /// Total recorded time before the final (held-forever) state.
    pub fn horizon(&self) -> f64 {
        *self.cumulative.last().expect("paths are non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrm::test_models::wavelan;

    /// The path of Example 3.2:
    /// 1 →^{10} 2 →^{4} 3 →^{2} 4 →^{3.75} 3 →^{1} 5 →^{2.5} 3 (0-indexed).
    fn example_path() -> TimedPath {
        TimedPath::new(
            vec![0, 1, 2, 3, 2, 4, 2],
            vec![10.0, 4.0, 2.0, 3.75, 1.0, 2.5],
        )
        .unwrap()
    }

    #[test]
    fn example_3_2_occupancy() {
        let p = example_path();
        // σ@21.75 = σ[5] = state 5 (index 4 in zero-based states).
        assert_eq!(p.index_at(21.75), 5);
        assert_eq!(p.state_at(21.75), 4);
        assert_eq!(p.state_at(0.0), 0);
        assert_eq!(p.state_at(10.0), 0); // boundary belongs to the earlier state
        assert_eq!(p.state_at(10.0 + 1e-9), 1);
        // Beyond the horizon the last state absorbs.
        assert_eq!(p.state_at(1e6), 2);
    }

    #[test]
    fn example_3_2_accumulated_reward() {
        let m = wavelan();
        let p = example_path();
        p.validate_in(&m).unwrap();
        let y = p.accumulated_reward(&m, 21.75);
        // 11983.25 mW·s + 1.13715 mJ = 11984.38715 mJ.
        assert!((y - 11984.38715).abs() < 1e-9, "got {y}");
    }

    #[test]
    fn reward_at_zero_is_zero() {
        let m = wavelan();
        let p = example_path();
        assert_eq!(p.accumulated_reward(&m, 0.0), 0.0);
    }

    #[test]
    fn reward_is_monotone_in_time() {
        let m = wavelan();
        let p = example_path();
        let mut prev = 0.0;
        for k in 0..200 {
            let t = k as f64 * 0.15;
            let y = p.accumulated_reward(&m, t);
            assert!(y + 1e-12 >= prev, "t = {t}");
            prev = y;
        }
    }

    #[test]
    fn validation_catches_missing_transition() {
        let m = wavelan();
        // 1 -> 3 (0-indexed 0 -> 2) is not a transition of the WaveLAN model.
        let p = TimedPath::new(vec![0, 2], vec![1.0]).unwrap();
        assert_eq!(
            p.validate_in(&m),
            Err(PathError::MissingTransition { from: 0, to: 2 })
        );
    }

    #[test]
    fn construction_errors() {
        assert_eq!(TimedPath::new(vec![], vec![]), Err(PathError::Empty));
        assert!(matches!(
            TimedPath::new(vec![0, 1], vec![]),
            Err(PathError::LengthMismatch { .. })
        ));
        assert!(matches!(
            TimedPath::new(vec![0, 1], vec![0.0]),
            Err(PathError::InvalidSojourn { .. })
        ));
        assert!(matches!(
            TimedPath::new(vec![0, 1], vec![-2.0]),
            Err(PathError::InvalidSojourn { .. })
        ));
        assert!(matches!(
            TimedPath::new(vec![0, 1], vec![f64::INFINITY]),
            Err(PathError::InvalidSojourn { .. })
        ));
    }

    #[test]
    fn singleton_path() {
        let p = TimedPath::new(vec![3], vec![]).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.last_state(), 3);
        assert_eq!(p.state_at(100.0), 3);
        assert_eq!(p.horizon(), 0.0);
    }

    #[test]
    fn accessors() {
        let p = example_path();
        assert_eq!(p.states().len(), 7);
        assert_eq!(p.sojourns().len(), 6);
        assert_eq!(p.state(3), 3);
        assert!((p.horizon() - 23.25).abs() < 1e-12);
        assert!(!p.is_empty());
    }
}
