//! Model transformations: the `M[Φ]` make-absorbing transformation
//! (Definition 4.1) and the lumping quotient `M/∼`.
//!
//! For `M[Φ]`, all Φ-states become absorbing and reward-free: their
//! outgoing rates, state rewards, and outgoing impulse rewards are set to
//! zero. The transformation is idempotent and composes as
//! `M[Φ][Ψ] = M[Φ ∨ Ψ]`.
//!
//! The quotient collapses each block of a [`Partition`] into one state;
//! see [`quotient`] for the exact construction. The quotient is purely
//! mechanical — *whether* a partition is a valid lumping is certified
//! separately (the `mrmc-analysis` crate's lumpability analysis and its
//! certificate verifier).

use mrmc_ctmc::{Ctmc, CtmcBuilder};

use crate::error::MrmError;
use crate::mrm::Mrm;
use crate::partition::Partition;
use crate::rewards::{ImpulseRewards, StateRewards};

/// Produce `M[Φ]` for the Φ-states given by the characteristic vector
/// `absorb`.
///
/// # Errors
///
/// [`MrmError::RewardSizeMismatch`] when `absorb.len()` differs from the
/// number of states; reconstruction errors are propagated (they indicate a
/// bug rather than bad input, since the source model already validated).
pub fn make_absorbing(mrm: &Mrm, absorb: &[bool]) -> Result<Mrm, MrmError> {
    let n = mrm.num_states();
    if absorb.len() != n {
        return Err(MrmError::RewardSizeMismatch {
            states: n,
            rewarded: absorb.len(),
        });
    }

    let mut b = CtmcBuilder::new(n);
    #[allow(clippy::needless_range_loop)] // s also indexes the rate matrix
    for s in 0..n {
        if absorb[s] {
            continue;
        }
        for (t, r) in mrm.ctmc().rates().row(s) {
            b.transition(s, t, r);
        }
    }
    for s in 0..n {
        for ap in mrm.labeling().of_state(s) {
            b.label(s, ap);
        }
    }
    let ctmc: Ctmc = b.build()?;

    let rho = StateRewards::new(
        (0..n)
            .map(|s| if absorb[s] { 0.0 } else { mrm.state_reward(s) })
            .collect(),
    )?;
    let mut iota = ImpulseRewards::new();
    for (from, to, v) in mrm.impulse_rewards().iter() {
        if !absorb[from] {
            iota.set(from, to, v)?;
        }
    }
    Mrm::new(ctmc, rho, iota)
}

/// The quotient `M/∼` collapsing each partition block into one state.
///
/// Per block `B` with representative `rep(B)` (the lowest member):
///
/// * **rates** — `R̂(B, C) = Σ_{t ∈ C} R(rep(B), t)` for every block
///   `C ≠ B`, summed in the representative's row order (so the sums are
///   bit-reproducible); intra-block transitions are dropped — for an
///   ordinarily lumpable partition they only re-randomize inside the
///   block and do not affect the aggregated law;
/// * **labels** — a block keeps exactly the propositions common to *all*
///   its members ([`Labeling::common_to`](mrmc_ctmc::Labeling::common_to));
///   the declared vocabulary is preserved;
/// * **state rewards** — the representative's reward;
/// * **impulse rewards** — the representative's outgoing impulses, mapped
///   to block pairs (intra-block impulses are dropped; a valid lumping
///   certificate requires them to be zero anyway).
///
/// Per-state results computed on the quotient lift back to the original
/// state space with [`Partition::lift`].
///
/// # Errors
///
/// [`MrmError::PartitionSizeMismatch`] when the partition does not cover
/// the state space; reconstruction errors are propagated.
pub fn quotient(mrm: &Mrm, partition: &Partition) -> Result<Mrm, MrmError> {
    let n = mrm.num_states();
    if partition.num_states() != n {
        return Err(MrmError::PartitionSizeMismatch {
            states: n,
            partitioned: partition.num_states(),
        });
    }
    let k = partition.num_blocks();

    let mut b = CtmcBuilder::new(k);
    let mut sums = vec![0.0_f64; k];
    let mut touched: Vec<usize> = Vec::new();
    for block in 0..k {
        let rep = partition.representative(block);
        for (t, r) in mrm.ctmc().rates().row(rep) {
            let c = partition.block_of(t);
            if c == block {
                continue;
            }
            if sums[c] == 0.0 {
                touched.push(c);
            }
            sums[c] += r;
        }
        touched.sort_unstable();
        for &c in &touched {
            b.transition(block, c, sums[c]);
            sums[c] = 0.0;
        }
        touched.clear();
    }
    for (block, members) in partition.blocks().iter().enumerate() {
        for ap in mrm.labeling().common_to(members) {
            b.label(block, ap);
        }
    }
    let mut ctmc: Ctmc = b.build()?;
    for ap in mrm.labeling().declared() {
        ctmc.labeling_mut().declare(ap);
    }

    let rho = StateRewards::new(
        (0..k)
            .map(|block| mrm.state_reward(partition.representative(block)))
            .collect(),
    )?;
    let mut iota = ImpulseRewards::new();
    for (from, to, v) in mrm.impulse_rewards().iter() {
        let fb = partition.block_of(from);
        if from == partition.representative(fb) && partition.block_of(to) != fb {
            iota.set(fb, partition.block_of(to), v)?;
        }
    }
    Mrm::new(ctmc, rho, iota)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrm::test_models::wavelan;

    #[test]
    fn example_4_1_busy_states_absorbing() {
        let m = wavelan();
        let busy = m.labeling().states_with("busy");
        let a = make_absorbing(&m, &busy).unwrap();

        // busy-states 3 and 4 lose all outgoing rates and rewards.
        assert!(a.ctmc().is_absorbing(3));
        assert!(a.ctmc().is_absorbing(4));
        assert_eq!(a.state_reward(3), 0.0);
        assert_eq!(a.state_reward(4), 0.0);
        // Other states keep everything.
        assert_eq!(a.ctmc().rates().get(2, 3), 1.5);
        assert_eq!(a.state_reward(2), 1319.0);
        assert_eq!(a.impulse_reward(2, 3), 0.42545);
        // Labels survive.
        assert!(a.labeling().has(3, "busy"));
    }

    #[test]
    fn transformation_is_idempotent() {
        let m = wavelan();
        let busy = m.labeling().states_with("busy");
        let once = make_absorbing(&m, &busy).unwrap();
        let twice = make_absorbing(&once, &busy).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn composition_equals_union() {
        // M[Φ][Ψ] = M[Φ ∨ Ψ].
        let m = wavelan();
        let busy = m.labeling().states_with("busy");
        let off = m.labeling().states_with("off");
        let union: Vec<bool> = busy.iter().zip(&off).map(|(&a, &b)| a || b).collect();

        let sequential = make_absorbing(&make_absorbing(&m, &busy).unwrap(), &off).unwrap();
        let joint = make_absorbing(&m, &union).unwrap();
        assert_eq!(sequential, joint);
    }

    #[test]
    fn absorbing_nothing_changes_nothing_but_impulses_of_removed_rows() {
        let m = wavelan();
        let none = vec![false; m.num_states()];
        let a = make_absorbing(&m, &none).unwrap();
        assert_eq!(a, m);
    }

    #[test]
    fn absorbing_everything_zeroes_the_model() {
        let m = wavelan();
        let all = vec![true; m.num_states()];
        let a = make_absorbing(&m, &all).unwrap();
        for s in 0..a.num_states() {
            assert!(a.ctmc().is_absorbing(s));
            assert_eq!(a.state_reward(s), 0.0);
        }
        assert!(a.impulse_rewards().is_empty());
    }

    #[test]
    fn wrong_length_rejected() {
        let m = wavelan();
        assert!(matches!(
            make_absorbing(&m, &[true]),
            Err(MrmError::RewardSizeMismatch { .. })
        ));
    }

    /// A hand-lumpable diamond: 0 → {1, 2} → 3 → 0 where the middle states
    /// agree on rates, labels, rewards and impulses.
    fn diamond() -> Mrm {
        let mut b = CtmcBuilder::new(4);
        b.transition(0, 1, 1.0).transition(0, 2, 1.0);
        b.transition(1, 3, 2.0);
        b.transition(2, 3, 2.0);
        b.transition(3, 0, 0.5);
        b.label(1, "mid").label(2, "mid");
        b.label(1, "left");
        b.label(3, "goal");
        let ctmc = b.build().unwrap();
        let rho = StateRewards::new(vec![0.0, 5.0, 5.0, 1.0]).unwrap();
        let mut iota = ImpulseRewards::new();
        iota.set(1, 3, 0.5).unwrap();
        iota.set(2, 3, 0.5).unwrap();
        Mrm::new(ctmc, rho, iota).unwrap()
    }

    #[test]
    fn quotient_collapses_a_lumpable_block() {
        let m = diamond();
        let p = Partition::from_assignment(&[0, 1, 1, 2]);
        let q = quotient(&m, &p).unwrap();
        assert_eq!(q.num_states(), 3);
        // Rates aggregate into the merged block and out of its rep.
        assert_eq!(q.ctmc().rates().get(0, 1), 2.0);
        assert_eq!(q.ctmc().rates().get(1, 2), 2.0);
        assert_eq!(q.ctmc().rates().get(2, 0), 0.5);
        // Only block-uniform labels survive; `left` held in state 1 alone.
        assert!(q.labeling().has(1, "mid"));
        assert!(!q.labeling().has(1, "left"));
        assert!(q.labeling().has(2, "goal"));
        // Declared vocabulary is preserved even for dropped labels.
        assert!(q.labeling().declared().contains(&"left"));
        // Rewards come from the representative.
        assert_eq!(q.state_reward(1), 5.0);
        assert_eq!(q.impulse_reward(1, 2), 0.5);
    }

    #[test]
    fn quotient_under_identity_is_the_model_without_self_loops() {
        let m = diamond();
        let q = quotient(&m, &Partition::identity(4)).unwrap();
        assert_eq!(q, m);
    }

    #[test]
    fn quotient_drops_intra_block_transitions() {
        // Merge 1 and 3: the 1 → 3 transition (and its impulse) vanish.
        let m = diamond();
        let p = Partition::from_assignment(&[0, 1, 2, 1]);
        let q = quotient(&m, &p).unwrap();
        assert_eq!(q.num_states(), 3);
        assert_eq!(q.ctmc().rates().get(1, 1), 0.0);
        assert_eq!(q.impulse_reward(1, 1), 0.0);
        // The representative's inter-block structure stays: 1 → 0 is absent
        // but 3 → 0 belongs to the non-representative member, so the merged
        // block keeps only rep state 1's outgoing rows.
        assert_eq!(q.ctmc().rates().get(1, 0), 0.0);
    }

    #[test]
    fn quotient_wrong_size_rejected() {
        let m = diamond();
        assert!(matches!(
            quotient(&m, &Partition::identity(2)),
            Err(MrmError::PartitionSizeMismatch { states: 4, .. })
        ));
    }

    #[test]
    fn incoming_impulses_to_absorbed_states_survive() {
        // Only *outgoing* rewards of absorbed states are cleared: the impulse
        // earned on entering an absorbed state still counts (Theorem 4.1
        // relies on this).
        let m = wavelan();
        let busy = m.labeling().states_with("busy");
        let a = make_absorbing(&m, &busy).unwrap();
        assert_eq!(a.impulse_reward(2, 3), 0.42545);
        assert_eq!(a.impulse_reward(2, 4), 0.36195);
    }
}
