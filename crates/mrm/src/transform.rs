//! The `M[Φ]` make-absorbing transformation (Definition 4.1).
//!
//! All Φ-states become absorbing and reward-free: their outgoing rates,
//! state rewards, and outgoing impulse rewards are set to zero. The
//! transformation is idempotent and composes as
//! `M[Φ][Ψ] = M[Φ ∨ Ψ]`.

use mrmc_ctmc::{Ctmc, CtmcBuilder};

use crate::error::MrmError;
use crate::mrm::Mrm;
use crate::rewards::{ImpulseRewards, StateRewards};

/// Produce `M[Φ]` for the Φ-states given by the characteristic vector
/// `absorb`.
///
/// # Errors
///
/// [`MrmError::RewardSizeMismatch`] when `absorb.len()` differs from the
/// number of states; reconstruction errors are propagated (they indicate a
/// bug rather than bad input, since the source model already validated).
pub fn make_absorbing(mrm: &Mrm, absorb: &[bool]) -> Result<Mrm, MrmError> {
    let n = mrm.num_states();
    if absorb.len() != n {
        return Err(MrmError::RewardSizeMismatch {
            states: n,
            rewarded: absorb.len(),
        });
    }

    let mut b = CtmcBuilder::new(n);
    #[allow(clippy::needless_range_loop)] // s also indexes the rate matrix
    for s in 0..n {
        if absorb[s] {
            continue;
        }
        for (t, r) in mrm.ctmc().rates().row(s) {
            b.transition(s, t, r);
        }
    }
    for s in 0..n {
        for ap in mrm.labeling().of_state(s) {
            b.label(s, ap);
        }
    }
    let ctmc: Ctmc = b.build()?;

    let rho = StateRewards::new(
        (0..n)
            .map(|s| if absorb[s] { 0.0 } else { mrm.state_reward(s) })
            .collect(),
    )?;
    let mut iota = ImpulseRewards::new();
    for (from, to, v) in mrm.impulse_rewards().iter() {
        if !absorb[from] {
            iota.set(from, to, v)?;
        }
    }
    Mrm::new(ctmc, rho, iota)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mrm::test_models::wavelan;

    #[test]
    fn example_4_1_busy_states_absorbing() {
        let m = wavelan();
        let busy = m.labeling().states_with("busy");
        let a = make_absorbing(&m, &busy).unwrap();

        // busy-states 3 and 4 lose all outgoing rates and rewards.
        assert!(a.ctmc().is_absorbing(3));
        assert!(a.ctmc().is_absorbing(4));
        assert_eq!(a.state_reward(3), 0.0);
        assert_eq!(a.state_reward(4), 0.0);
        // Other states keep everything.
        assert_eq!(a.ctmc().rates().get(2, 3), 1.5);
        assert_eq!(a.state_reward(2), 1319.0);
        assert_eq!(a.impulse_reward(2, 3), 0.42545);
        // Labels survive.
        assert!(a.labeling().has(3, "busy"));
    }

    #[test]
    fn transformation_is_idempotent() {
        let m = wavelan();
        let busy = m.labeling().states_with("busy");
        let once = make_absorbing(&m, &busy).unwrap();
        let twice = make_absorbing(&once, &busy).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn composition_equals_union() {
        // M[Φ][Ψ] = M[Φ ∨ Ψ].
        let m = wavelan();
        let busy = m.labeling().states_with("busy");
        let off = m.labeling().states_with("off");
        let union: Vec<bool> = busy.iter().zip(&off).map(|(&a, &b)| a || b).collect();

        let sequential = make_absorbing(&make_absorbing(&m, &busy).unwrap(), &off).unwrap();
        let joint = make_absorbing(&m, &union).unwrap();
        assert_eq!(sequential, joint);
    }

    #[test]
    fn absorbing_nothing_changes_nothing_but_impulses_of_removed_rows() {
        let m = wavelan();
        let none = vec![false; m.num_states()];
        let a = make_absorbing(&m, &none).unwrap();
        assert_eq!(a, m);
    }

    #[test]
    fn absorbing_everything_zeroes_the_model() {
        let m = wavelan();
        let all = vec![true; m.num_states()];
        let a = make_absorbing(&m, &all).unwrap();
        for s in 0..a.num_states() {
            assert!(a.ctmc().is_absorbing(s));
            assert_eq!(a.state_reward(s), 0.0);
        }
        assert!(a.impulse_rewards().is_empty());
    }

    #[test]
    fn wrong_length_rejected() {
        let m = wavelan();
        assert!(matches!(
            make_absorbing(&m, &[true]),
            Err(MrmError::RewardSizeMismatch { .. })
        ));
    }

    #[test]
    fn incoming_impulses_to_absorbed_states_survive() {
        // Only *outgoing* rewards of absorbed states are cleared: the impulse
        // earned on entering an absorbed state still counts (Theorem 4.1
        // relies on this).
        let m = wavelan();
        let busy = m.labeling().states_with("busy");
        let a = make_absorbing(&m, &busy).unwrap();
        assert_eq!(a.impulse_reward(2, 3), 0.42545);
        assert_eq!(a.impulse_reward(2, 4), 0.36195);
    }
}
