//! The Markov reward model `M = ((S, R, Label), ρ, ι)` (Definition 3.1).

use mrmc_ctmc::{Ctmc, Labeling};

use crate::error::MrmError;
use crate::rewards::{ImpulseRewards, StateRewards};

/// A Markov reward model: a labeled CTMC augmented with a state reward
/// structure `ρ` and an impulse reward structure `ι`.
///
/// Invariants enforced at construction:
///
/// * `ρ` covers exactly the chain's states and is non-negative;
/// * `ι` is non-negative and mentions only existing states;
/// * `ι(s, s) = 0` whenever `R(s, s) > 0` (Definition 3.1 forbids impulse
///   rewards on self-loops, since a self-transition is indistinguishable
///   from continued residence).
#[derive(Debug, Clone, PartialEq)]
pub struct Mrm {
    ctmc: Ctmc,
    state_rewards: StateRewards,
    impulse_rewards: ImpulseRewards,
}

impl Mrm {
    /// Assemble and validate a reward model.
    ///
    /// # Errors
    ///
    /// * [`MrmError::RewardSizeMismatch`] — `ρ` or `ι` refers to states the
    ///   chain does not have;
    /// * [`MrmError::SelfLoopImpulse`] — a non-zero `ι(s, s)` on a state with
    ///   a positive self-loop rate.
    pub fn new(
        ctmc: Ctmc,
        state_rewards: StateRewards,
        impulse_rewards: ImpulseRewards,
    ) -> Result<Self, MrmError> {
        let n = ctmc.num_states();
        if state_rewards.len() != n {
            return Err(MrmError::RewardSizeMismatch {
                states: n,
                rewarded: state_rewards.len(),
            });
        }
        if impulse_rewards.min_states() > n {
            return Err(MrmError::RewardSizeMismatch {
                states: n,
                rewarded: impulse_rewards.min_states(),
            });
        }
        for (from, to, value) in impulse_rewards.iter() {
            if from == to && ctmc.rates().get(from, to) > 0.0 {
                return Err(MrmError::SelfLoopImpulse { state: from, value });
            }
        }
        Ok(Mrm {
            ctmc,
            state_rewards,
            impulse_rewards,
        })
    }

    /// A reward-free model (all rewards zero) over the given chain.
    pub fn without_rewards(ctmc: Ctmc) -> Self {
        let n = ctmc.num_states();
        Mrm {
            ctmc,
            state_rewards: StateRewards::zero(n),
            impulse_rewards: ImpulseRewards::new(),
        }
    }

    /// The underlying labeled CTMC.
    pub fn ctmc(&self) -> &Ctmc {
        &self.ctmc
    }

    /// The labeling of the underlying chain.
    pub fn labeling(&self) -> &Labeling {
        self.ctmc.labeling()
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.ctmc.num_states()
    }

    /// The state reward structure `ρ`.
    pub fn state_rewards(&self) -> &StateRewards {
        &self.state_rewards
    }

    /// The impulse reward structure `ι`.
    pub fn impulse_rewards(&self) -> &ImpulseRewards {
        &self.impulse_rewards
    }

    /// `ρ(state)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn state_reward(&self, state: usize) -> f64 {
        self.state_rewards.get(state)
    }

    /// `ι(from, to)`.
    pub fn impulse_reward(&self, from: usize, to: usize) -> f64 {
        self.impulse_rewards.get(from, to)
    }

    /// `true` when the model carries no rewards at all (both structures
    /// zero); such models reduce to plain CSL model checking.
    pub fn is_reward_free(&self) -> bool {
        self.state_rewards.is_zero() && self.impulse_rewards.is_empty()
    }

    /// Decompose into parts (chain, `ρ`, `ι`), e.g. for transformation.
    pub fn into_parts(self) -> (Ctmc, StateRewards, ImpulseRewards) {
        (self.ctmc, self.state_rewards, self.impulse_rewards)
    }

    /// A copy with all rewards (state and impulse) multiplied by `factor`.
    ///
    /// Scaling changes the reward *unit*: a bound `r` over the original
    /// model corresponds to `r · factor` over the scaled one. The thesis
    /// uses this to make rational rewards integral for discretization
    /// (Section 4.4.1).
    ///
    /// # Errors
    ///
    /// [`MrmError`] if `factor` is negative or non-finite (reported through
    /// the reward validators).
    pub fn with_scaled_rewards(&self, factor: f64) -> Result<Self, MrmError> {
        let rho = StateRewards::new(
            self.state_rewards
                .as_slice()
                .iter()
                .map(|r| r * factor)
                .collect(),
        )?;
        let mut iota = ImpulseRewards::new();
        for (from, to, v) in self.impulse_rewards.iter() {
            iota.set(from, to, v * factor)?;
        }
        Mrm::new(self.ctmc.clone(), rho, iota)
    }
}

#[cfg(test)]
pub(crate) mod test_models {
    use super::*;
    use mrmc_ctmc::CtmcBuilder;

    /// The WaveLAN modem MRM of Example 3.1 (states 0..=4 for 1..=5),
    /// with the rates of Example 4.2. Rewards in mW / mJ.
    pub fn wavelan() -> Mrm {
        let mut b = CtmcBuilder::new(5);
        b.transition(0, 1, 0.1);
        b.transition(1, 0, 0.05).transition(1, 2, 5.0);
        b.transition(2, 1, 12.0)
            .transition(2, 3, 1.5)
            .transition(2, 4, 0.75);
        b.transition(3, 2, 10.0);
        b.transition(4, 2, 15.0);
        b.label(0, "off");
        b.label(1, "sleep");
        b.label(2, "idle");
        b.label(3, "receive").label(3, "busy");
        b.label(4, "transmit").label(4, "busy");
        let ctmc = b.build().unwrap();

        let rho = StateRewards::new(vec![0.0, 80.0, 1319.0, 1675.0, 1425.0]).unwrap();
        let mut iota = ImpulseRewards::new();
        iota.set(0, 1, 0.02).unwrap();
        iota.set(1, 2, 0.32975).unwrap();
        iota.set(2, 3, 0.42545).unwrap();
        iota.set(2, 4, 0.36195).unwrap();
        Mrm::new(ctmc, rho, iota).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::test_models::wavelan;
    use super::*;
    use mrmc_ctmc::CtmcBuilder;

    #[test]
    fn wavelan_reward_structure() {
        let m = wavelan();
        assert_eq!(m.num_states(), 5);
        assert_eq!(m.state_reward(2), 1319.0);
        assert_eq!(m.impulse_reward(2, 3), 0.42545);
        assert_eq!(m.impulse_reward(3, 2), 0.0);
        assert!(!m.is_reward_free());
        assert!(m.labeling().has(3, "busy"));
    }

    #[test]
    fn self_loop_impulse_rejected() {
        let mut b = CtmcBuilder::new(1);
        b.transition(0, 0, 1.0);
        let ctmc = b.build().unwrap();
        let mut iota = ImpulseRewards::new();
        iota.set(0, 0, 5.0).unwrap();
        assert!(matches!(
            Mrm::new(ctmc, StateRewards::zero(1), iota),
            Err(MrmError::SelfLoopImpulse { state: 0, .. })
        ));
    }

    #[test]
    fn self_loop_impulse_allowed_without_self_loop_rate() {
        // ι(s, s) on a pair with R(s, s) = 0 is irrelevant and accepted.
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0);
        let ctmc = b.build().unwrap();
        let mut iota = ImpulseRewards::new();
        iota.set(0, 0, 5.0).unwrap();
        assert!(Mrm::new(ctmc, StateRewards::zero(2), iota).is_ok());
    }

    #[test]
    fn reward_size_mismatch_rejected() {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0);
        let ctmc = b.build().unwrap();
        assert!(matches!(
            Mrm::new(ctmc.clone(), StateRewards::zero(3), ImpulseRewards::new()),
            Err(MrmError::RewardSizeMismatch { .. })
        ));
        let mut iota = ImpulseRewards::new();
        iota.set(5, 6, 1.0).unwrap();
        assert!(matches!(
            Mrm::new(ctmc, StateRewards::zero(2), iota),
            Err(MrmError::RewardSizeMismatch { .. })
        ));
    }

    #[test]
    fn without_rewards_is_reward_free() {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0);
        let m = Mrm::without_rewards(b.build().unwrap());
        assert!(m.is_reward_free());
        assert_eq!(m.state_reward(0), 0.0);
    }

    #[test]
    fn scaled_rewards() {
        let m = wavelan();
        let s = m.with_scaled_rewards(10.0).unwrap();
        assert_eq!(s.state_reward(2), 13190.0);
        assert_eq!(s.impulse_reward(2, 3), 4.2545);
        // Scaling by zero empties the structures.
        let z = m.with_scaled_rewards(0.0).unwrap();
        assert!(z.is_reward_free());
        // Invalid factors are rejected.
        assert!(m.with_scaled_rewards(-1.0).is_err());
        assert!(m.with_scaled_rewards(f64::NAN).is_err());
    }

    #[test]
    fn into_parts_roundtrip() {
        let m = wavelan();
        let states = m.num_states();
        let (c, r, i) = m.into_parts();
        let rebuilt = Mrm::new(c, r, i).unwrap();
        assert_eq!(rebuilt.num_states(), states);
    }
}
