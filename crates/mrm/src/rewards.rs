//! The state and impulse reward structures of Definition 3.1.

use std::collections::BTreeMap;

use crate::error::MrmError;

/// The state reward structure `ρ : S → ℝ≥0`.
///
/// Residing `t` time units in state `s` earns `ρ(s)·t`.
#[derive(Debug, Clone, PartialEq)]
pub struct StateRewards {
    rates: Vec<f64>,
}

impl StateRewards {
    /// Wrap a per-state reward vector.
    ///
    /// # Errors
    ///
    /// [`MrmError::InvalidStateReward`] for negative or non-finite entries.
    pub fn new(rates: Vec<f64>) -> Result<Self, MrmError> {
        for (state, &value) in rates.iter().enumerate() {
            if !(value.is_finite() && value >= 0.0) {
                return Err(MrmError::InvalidStateReward { state, value });
            }
        }
        Ok(StateRewards { rates })
    }

    /// All-zero rewards over `num_states` states.
    pub fn zero(num_states: usize) -> Self {
        StateRewards {
            rates: vec![0.0; num_states],
        }
    }

    /// Number of states covered.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// `true` when no states are covered.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// `ρ(state)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn get(&self, state: usize) -> f64 {
        self.rates[state]
    }

    /// The underlying per-state reward slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.rates
    }

    /// The distinct reward values in strictly decreasing order
    /// (`r_1 > r_2 > … > r_{K+1}` in the notation of Section 4.6.2).
    pub fn distinct_descending(&self) -> Vec<f64> {
        let mut v = self.rates.clone();
        v.sort_by(|a, b| b.partial_cmp(a).expect("rewards are finite"));
        v.dedup();
        v
    }

    /// `true` when every reward is zero.
    pub fn is_zero(&self) -> bool {
        self.rates.iter().all(|&r| r == 0.0)
    }

    /// `true` when every reward is an integer (required by the
    /// discretization engine after scaling, Section 4.4.1).
    pub fn all_integer(&self) -> bool {
        self.rates.iter().all(|&r| r.fract() == 0.0)
    }
}

/// The impulse reward structure `ι : S × S → ℝ≥0`.
///
/// Taking the transition `s → s'` earns `ι(s, s')` instantaneously. Pairs
/// never set default to zero.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ImpulseRewards {
    map: BTreeMap<(usize, usize), f64>,
}

impl ImpulseRewards {
    /// An empty (all-zero) impulse structure.
    pub fn new() -> Self {
        ImpulseRewards::default()
    }

    /// Set `ι(from, to) = value`.
    ///
    /// Setting a value of zero removes the entry.
    ///
    /// # Errors
    ///
    /// [`MrmError::InvalidImpulseReward`] for negative or non-finite values.
    pub fn set(&mut self, from: usize, to: usize, value: f64) -> Result<&mut Self, MrmError> {
        if !(value.is_finite() && value >= 0.0) {
            return Err(MrmError::InvalidImpulseReward { from, to, value });
        }
        if value == 0.0 {
            self.map.remove(&(from, to));
        } else {
            self.map.insert((from, to), value);
        }
        Ok(self)
    }

    /// `ι(from, to)`, zero when unset.
    pub fn get(&self, from: usize, to: usize) -> f64 {
        self.map.get(&(from, to)).copied().unwrap_or(0.0)
    }

    /// Iterate over the non-zero impulses as `(from, to, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.map.iter().map(|(&(f, t), &v)| (f, t, v))
    }

    /// Number of non-zero impulses.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when every impulse is zero.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The distinct non-negative impulse values in strictly decreasing
    /// order, always ending with an implicit `0`
    /// (`i_1 > i_2 > … > i_J ≥ 0` in the notation of Section 4.6.2).
    pub fn distinct_descending(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.map.values().copied().collect();
        v.push(0.0);
        v.sort_by(|a, b| b.partial_cmp(a).expect("impulses are finite"));
        v.dedup();
        v
    }

    /// Largest state index mentioned plus one (zero when empty); used for
    /// size validation against a model.
    pub fn min_states(&self) -> usize {
        self.map
            .keys()
            .map(|&(f, t)| f.max(t) + 1)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_rewards_validate() {
        assert!(StateRewards::new(vec![0.0, 1.5, 2.0]).is_ok());
        assert!(matches!(
            StateRewards::new(vec![1.0, -0.5]),
            Err(MrmError::InvalidStateReward { state: 1, .. })
        ));
        assert!(matches!(
            StateRewards::new(vec![f64::INFINITY]),
            Err(MrmError::InvalidStateReward { state: 0, .. })
        ));
    }

    #[test]
    fn distinct_descending_state_rewards() {
        let r = StateRewards::new(vec![1.0, 5.0, 3.0, 5.0, 0.0, 1.0]).unwrap();
        assert_eq!(r.distinct_descending(), vec![5.0, 3.0, 1.0, 0.0]);
    }

    #[test]
    fn zero_and_flags() {
        let z = StateRewards::zero(3);
        assert!(z.is_zero());
        assert!(z.all_integer());
        assert_eq!(z.len(), 3);
        let r = StateRewards::new(vec![1.0, 2.5]).unwrap();
        assert!(!r.is_zero());
        assert!(!r.all_integer());
        assert_eq!(r.as_slice(), &[1.0, 2.5]);
    }

    #[test]
    fn impulse_rewards_set_get() {
        let mut i = ImpulseRewards::new();
        i.set(0, 1, 2.5).unwrap();
        assert_eq!(i.get(0, 1), 2.5);
        assert_eq!(i.get(1, 0), 0.0);
        assert_eq!(i.len(), 1);
        // Overwrite with zero removes.
        i.set(0, 1, 0.0).unwrap();
        assert!(i.is_empty());
    }

    #[test]
    fn impulse_rewards_validate() {
        let mut i = ImpulseRewards::new();
        assert!(matches!(
            i.set(0, 1, -1.0),
            Err(MrmError::InvalidImpulseReward { .. })
        ));
        assert!(matches!(
            i.set(0, 1, f64::NAN),
            Err(MrmError::InvalidImpulseReward { .. })
        ));
    }

    #[test]
    fn distinct_descending_impulses_include_zero() {
        let mut i = ImpulseRewards::new();
        i.set(0, 1, 2.0).unwrap();
        i.set(1, 2, 1.0).unwrap();
        i.set(2, 0, 2.0).unwrap();
        assert_eq!(i.distinct_descending(), vec![2.0, 1.0, 0.0]);
        assert_eq!(ImpulseRewards::new().distinct_descending(), vec![0.0]);
    }

    #[test]
    fn iter_and_min_states() {
        let mut i = ImpulseRewards::new();
        i.set(2, 5, 1.0).unwrap();
        i.set(0, 1, 3.0).unwrap();
        let all: Vec<_> = i.iter().collect();
        assert_eq!(all, vec![(0, 1, 3.0), (2, 5, 1.0)]);
        assert_eq!(i.min_states(), 6);
        assert_eq!(ImpulseRewards::new().min_states(), 0);
    }
}
