//! Error types for reward-model construction and paths.

use std::error::Error;
use std::fmt;

use mrmc_ctmc::ModelError;

/// An error raised while constructing or transforming a Markov reward model.
#[derive(Debug, Clone, PartialEq)]
pub enum MrmError {
    /// A problem with the underlying chain.
    Model(ModelError),
    /// A negative (or non-finite) state reward.
    InvalidStateReward {
        /// State carrying the offending reward.
        state: usize,
        /// The offending value.
        value: f64,
    },
    /// A negative (or non-finite) impulse reward.
    InvalidImpulseReward {
        /// Source state.
        from: usize,
        /// Target state.
        to: usize,
        /// The offending value.
        value: f64,
    },
    /// Definition 3.1 requires `ι(s, s) = 0` whenever `R(s, s) > 0`.
    SelfLoopImpulse {
        /// The offending state.
        state: usize,
        /// The non-zero impulse found on its self-loop.
        value: f64,
    },
    /// The reward structure covers a different number of states than the
    /// chain.
    RewardSizeMismatch {
        /// States in the chain.
        states: usize,
        /// States covered by the reward structure.
        rewarded: usize,
    },
    /// A partition covers a different number of states than the chain.
    PartitionSizeMismatch {
        /// States in the chain.
        states: usize,
        /// States covered by the partition.
        partitioned: usize,
    },
}

impl fmt::Display for MrmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrmError::Model(e) => write!(f, "{e}"),
            MrmError::InvalidStateReward { state, value } => {
                write!(f, "invalid state reward {value} on state {state}")
            }
            MrmError::InvalidImpulseReward { from, to, value } => {
                write!(f, "invalid impulse reward {value} on transition {from} -> {to}")
            }
            MrmError::SelfLoopImpulse { state, value } => write!(
                f,
                "non-zero impulse reward {value} on self-loop of state {state} (forbidden by Definition 3.1)"
            ),
            MrmError::RewardSizeMismatch { states, rewarded } => write!(
                f,
                "reward structure covers {rewarded} states but the model has {states}"
            ),
            MrmError::PartitionSizeMismatch {
                states,
                partitioned,
            } => write!(
                f,
                "partition covers {partitioned} states but the model has {states}"
            ),
        }
    }
}

impl Error for MrmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MrmError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for MrmError {
    fn from(e: ModelError) -> Self {
        MrmError::Model(e)
    }
}

/// An error raised while constructing a timed path.
#[derive(Debug, Clone, PartialEq)]
pub enum PathError {
    /// A path must contain at least one state.
    Empty,
    /// `sojourns` must have exactly one entry less than `states`.
    LengthMismatch {
        /// Number of states supplied.
        states: usize,
        /// Number of sojourn times supplied.
        sojourns: usize,
    },
    /// Sojourn times must be strictly positive and finite.
    InvalidSojourn {
        /// Position of the offending sojourn.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A step `σ[i] → σ[i+1]` has rate zero in the model it was validated
    /// against.
    MissingTransition {
        /// Source state of the impossible step.
        from: usize,
        /// Target state of the impossible step.
        to: usize,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Empty => write!(f, "path has no states"),
            PathError::LengthMismatch { states, sojourns } => write!(
                f,
                "path with {states} states needs {} sojourn times, found {sojourns}",
                states.saturating_sub(1)
            ),
            PathError::InvalidSojourn { index, value } => {
                write!(f, "invalid sojourn time {value} at position {index}")
            }
            PathError::MissingTransition { from, to } => {
                write!(f, "path takes impossible transition {from} -> {to}")
            }
        }
    }
}

impl Error for PathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(MrmError::InvalidStateReward {
            state: 1,
            value: -2.0
        }
        .to_string()
        .contains("-2"));
        assert!(MrmError::InvalidImpulseReward {
            from: 0,
            to: 1,
            value: f64::NAN
        }
        .to_string()
        .contains("0 -> 1"));
        assert!(MrmError::SelfLoopImpulse {
            state: 3,
            value: 1.0
        }
        .to_string()
        .contains("Definition 3.1"));
        assert!(MrmError::RewardSizeMismatch {
            states: 2,
            rewarded: 3
        }
        .to_string()
        .contains('3'));
        assert!(PathError::Empty.to_string().contains("no states"));
        assert!(PathError::LengthMismatch {
            states: 3,
            sojourns: 5
        }
        .to_string()
        .contains("needs 2"));
        assert!(PathError::InvalidSojourn {
            index: 0,
            value: -1.0
        }
        .to_string()
        .contains("-1"));
        assert!(PathError::MissingTransition { from: 1, to: 2 }
            .to_string()
            .contains("1 -> 2"));
    }

    #[test]
    fn model_error_wraps_with_source() {
        let e: MrmError = ModelError::EmptyModel.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
