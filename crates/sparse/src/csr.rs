//! Compressed-sparse-row matrices.
//!
//! [`CsrMatrix`] is the workhorse representation for rate matrices and
//! transition-probability matrices throughout the workspace. Matrices are
//! built through [`CooBuilder`], which accepts coordinate-format entries in
//! any order, merges duplicates by addition, and drops explicit zeros.

use crate::error::BuildError;

/// Builder collecting coordinate-format (`(row, col, value)`) entries for a
/// [`CsrMatrix`].
///
/// Entries may be pushed in any order; duplicates are summed. Exact zeros are
/// dropped during [`build`](CooBuilder::build) so the resulting sparsity
/// pattern only contains structural non-zeros.
///
/// ```
/// use mrmc_sparse::CooBuilder;
///
/// let mut b = CooBuilder::new(2, 3);
/// b.push(1, 2, 4.0);
/// b.push(0, 0, 1.0);
/// b.push(1, 2, 1.0); // merged with the earlier (1, 2) entry
/// let m = b.build().unwrap();
/// assert_eq!(m.get(1, 2), 5.0);
/// assert_eq!(m.nnz(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CooBuilder {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooBuilder {
    /// Create a builder for an `nrows x ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooBuilder {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Create a builder with pre-allocated capacity for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooBuilder {
            nrows,
            ncols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of rows the built matrix will have.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns the built matrix will have.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Queue an entry. Bounds and finiteness are validated in
    /// [`build`](CooBuilder::build).
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> &mut Self {
        self.entries.push((row, col, value));
        self
    }

    /// Number of queued (unmerged) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries have been queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Build the CSR matrix, merging duplicate coordinates by addition and
    /// dropping entries that merged to exactly zero.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::IndexOutOfBounds`] for entries outside the
    /// declared shape and [`BuildError::NonFiniteValue`] for NaN/infinite
    /// values.
    pub fn build(mut self) -> Result<CsrMatrix, BuildError> {
        for &(r, c, v) in &self.entries {
            if r >= self.nrows || c >= self.ncols {
                return Err(BuildError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    nrows: self.nrows,
                    ncols: self.ncols,
                });
            }
            if !v.is_finite() {
                return Err(BuildError::NonFiniteValue { row: r, col: c });
            }
        }
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::with_capacity(self.entries.len());
        let mut values = Vec::with_capacity(self.entries.len());
        row_ptr.push(0);

        let mut current_row = 0usize;
        let mut i = 0usize;
        while i < self.entries.len() {
            let (r, c, mut v) = self.entries[i];
            i += 1;
            while i < self.entries.len() && self.entries[i].0 == r && self.entries[i].1 == c {
                v += self.entries[i].2;
                i += 1;
            }
            if v == 0.0 {
                continue;
            }
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            col_idx.push(c);
            values.push(v);
        }
        while current_row < self.nrows {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }

        Ok(CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            col_idx,
            values,
        })
    }
}

/// An immutable matrix in compressed-sparse-row format.
///
/// Rows are stored contiguously; within each row, column indices are strictly
/// increasing. Use [`CooBuilder`] to construct one.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

/// Iterator over the `(column, value)` pairs of one matrix row, produced by
/// [`CsrMatrix::row`].
#[derive(Debug, Clone)]
pub struct RowEntries<'a> {
    cols: std::slice::Iter<'a, usize>,
    vals: std::slice::Iter<'a, f64>,
}

impl<'a> Iterator for RowEntries<'a> {
    type Item = (usize, f64);

    fn next(&mut self) -> Option<Self::Item> {
        Some((*self.cols.next()?, *self.vals.next()?))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.cols.size_hint()
    }
}

impl<'a> ExactSizeIterator for RowEntries<'a> {}

impl CsrMatrix {
    /// An `n x n` matrix with no stored entries.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Value at `(row, col)`, `0.0` when the entry is not stored.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.nrows, "row {row} out of bounds");
        assert!(col < self.ncols, "col {col} out of bounds");
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        match self.col_idx[lo..hi].binary_search(&col) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Iterate over the stored `(column, value)` pairs of `row` in increasing
    /// column order.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> RowEntries<'_> {
        assert!(row < self.nrows, "row {row} out of bounds");
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        RowEntries {
            cols: self.col_idx[lo..hi].iter(),
            vals: self.values[lo..hi].iter(),
        }
    }

    /// Number of stored entries in `row`.
    pub fn row_nnz(&self, row: usize) -> usize {
        self.row_ptr[row + 1] - self.row_ptr[row]
    }

    /// Iterate over all stored entries as `(row, col, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |r| self.row(r).map(move |(c, v)| (r, c, v)))
    }

    /// Sum of the stored values in each row.
    ///
    /// For a rate matrix this is the total exit rate `E(s)` of each state.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.nrows)
            .map(|r| self.row(r).map(|(_, v)| v).sum())
            .collect()
    }

    /// Matrix–vector product `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    #[allow(clippy::needless_range_loop)] // rows pair with dense outputs
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "mul_vec: length mismatch");
        let mut y = vec![0.0; self.nrows];
        for r in 0..self.nrows {
            let mut acc = 0.0;
            for (c, v) in self.row(r) {
                acc += v * x[c];
            }
            y[r] = acc;
        }
        y
    }

    /// Vector–matrix product `y = x·A` (distribution propagation).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nrows`.
    #[allow(clippy::needless_range_loop)] // rows pair with dense inputs
    pub fn vec_mul(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows, "vec_mul: length mismatch");
        let mut y = vec![0.0; self.ncols];
        for r in 0..self.nrows {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            for (c, v) in self.row(r) {
                y[c] += xr * v;
            }
        }
        y
    }

    /// The transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols];
        for &c in &self.col_idx {
            counts[c] += 1;
        }
        let mut row_ptr = Vec::with_capacity(self.ncols + 1);
        row_ptr.push(0);
        for c in 0..self.ncols {
            row_ptr.push(row_ptr[c] + counts[c]);
        }
        let mut next = row_ptr[..self.ncols].to_vec();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                let k = next[c];
                next[c] += 1;
                col_idx[k] = r;
                values[k] = v;
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// A copy with every stored value transformed by `f`.
    ///
    /// Entries mapped to exactly zero are kept structurally; use
    /// [`CooBuilder`] to re-compress if that matters.
    pub fn map_values(&self, mut f: impl FnMut(usize, usize, f64) -> f64) -> CsrMatrix {
        let mut out = self.clone();
        for r in 0..self.nrows {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            for k in lo..hi {
                out.values[k] = f(r, self.col_idx[k], self.values[k]);
            }
        }
        out
    }

    /// A copy scaled by `alpha`.
    pub fn scaled(&self, alpha: f64) -> CsrMatrix {
        self.map_values(|_, _, v| alpha * v)
    }

    /// Convert to a dense row-major `Vec<Vec<f64>>` (intended for tests and
    /// small direct solves).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.ncols]; self.nrows];
        for (r, c, v) in self.iter() {
            d[r][c] = v;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;

    fn sample() -> CsrMatrix {
        // [ 0.5 0.5 0   ]
        // [ 0.25 0 0.75 ]
        // [ 0.2 0.6 0.2 ]
        let mut b = CooBuilder::new(3, 3);
        b.push(0, 0, 0.5).push(0, 1, 0.5);
        b.push(1, 0, 0.25).push(1, 2, 0.75);
        b.push(2, 0, 0.2).push(2, 1, 0.6).push(2, 2, 0.2);
        b.build().unwrap()
    }

    #[test]
    fn build_and_get() {
        let m = sample();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 7);
        assert_eq!(m.get(0, 0), 0.5);
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(m.get(1, 2), 0.75);
    }

    #[test]
    fn duplicates_merge_and_zeros_drop() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 0, 1.0)
            .push(0, 0, 2.0)
            .push(1, 1, 5.0)
            .push(1, 1, -5.0);
        let m = b.build().unwrap();
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn out_of_bounds_entry_rejected() {
        let mut b = CooBuilder::new(2, 2);
        b.push(2, 0, 1.0);
        assert!(matches!(
            b.build(),
            Err(BuildError::IndexOutOfBounds { row: 2, .. })
        ));
    }

    #[test]
    fn non_finite_entry_rejected() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 0, f64::NAN);
        assert!(matches!(
            b.build(),
            Err(BuildError::NonFiniteValue { row: 0, col: 0 })
        ));
    }

    #[test]
    fn empty_rows_are_fine() {
        let mut b = CooBuilder::new(4, 4);
        b.push(3, 0, 1.0);
        let m = b.build().unwrap();
        assert_eq!(m.row(0).count(), 0);
        assert_eq!(m.row(3).count(), 1);
        assert_eq!(m.row_nnz(1), 0);
    }

    #[test]
    fn row_iteration_sorted() {
        let mut b = CooBuilder::new(1, 5);
        b.push(0, 4, 4.0).push(0, 1, 1.0).push(0, 3, 3.0);
        let m = b.build().unwrap();
        let row: Vec<_> = m.row(0).collect();
        assert_eq!(row, vec![(1, 1.0), (3, 3.0), (4, 4.0)]);
    }

    #[test]
    fn mul_vec_and_vec_mul() {
        let m = sample();
        // A·x with x = e0.
        assert_eq!(m.mul_vec(&[1.0, 0.0, 0.0]), vec![0.5, 0.25, 0.2]);
        // x·A with x = e0 (one DTMC step from state 0).
        assert_eq!(m.vec_mul(&[1.0, 0.0, 0.0]), vec![0.5, 0.5, 0.0]);
    }

    #[test]
    fn transient_example_2_2_of_the_thesis() {
        // p(3) = p(0) · P^3 for the DTMC of Figure 2.1.
        let m = sample();
        let mut p = vec![1.0, 0.0, 0.0];
        for _ in 0..3 {
            p = m.vec_mul(&p);
        }
        assert!((p[0] - 0.325).abs() < 1e-12);
        assert!((p[1] - 0.4125).abs() < 1e-12);
        assert!((p[2] - 0.2625).abs() < 1e-12);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(0, 1), 0.25);
        assert_eq!(t.get(2, 1), 0.75);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn row_sums_are_exit_rates() {
        let m = sample();
        let sums = m.row_sums();
        for s in sums {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn identity_and_zeros() {
        let i = CsrMatrix::identity(3);
        assert_eq!(i.mul_vec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
        let z = CsrMatrix::zeros(2, 3);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.mul_vec(&[1.0, 1.0, 1.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn map_and_scale() {
        let m = sample().scaled(2.0);
        assert_eq!(m.get(1, 2), 1.5);
        let m2 = m.map_values(|r, c, v| if r == c { 0.0 } else { v });
        assert_eq!(m2.get(0, 0), 0.0);
        assert_eq!(m2.get(0, 1), 1.0);
    }

    #[test]
    fn to_dense_matches() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d[1], vec![0.25, 0.0, 0.75]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        sample().get(3, 0);
    }

    fn random_matrix(rng: &mut Xoshiro256StarStar) -> CsrMatrix {
        let r = 1 + rng.range_usize(7);
        let c = 1 + rng.range_usize(7);
        let mut b = CooBuilder::new(r, c);
        for _ in 0..rng.range_usize(24) {
            b.push(
                rng.range_usize(r),
                rng.range_usize(c),
                rng.range_f64(-10.0, 10.0),
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn transpose_is_involution() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xC5A1);
        for _ in 0..64 {
            let m = random_matrix(&mut rng);
            assert_eq!(m.transpose().transpose(), m);
        }
    }

    #[test]
    fn mul_vec_matches_dense() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xC5A2);
        for seed in 0..64u64 {
            let m = random_matrix(&mut rng);
            let x: Vec<f64> = (0..m.ncols())
                .map(|i| ((seed as f64) + i as f64).sin())
                .collect();
            let y = m.mul_vec(&x);
            let d = m.to_dense();
            for r in 0..m.nrows() {
                let expect: f64 = (0..m.ncols()).map(|c| d[r][c] * x[c]).sum();
                assert!((y[r] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn vec_mul_agrees_with_transpose_mul_vec() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xC5A3);
        for seed in 0..64u64 {
            let m = random_matrix(&mut rng);
            let x: Vec<f64> = (0..m.nrows())
                .map(|i| ((seed as f64) * 0.37 + i as f64).cos())
                .collect();
            let a = m.vec_mul(&x);
            let b = m.transpose().mul_vec(&x);
            for (u, v) in a.iter().zip(&b) {
                assert!((u - v).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn row_sums_match_iteration() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xC5A4);
        for _ in 0..64 {
            let m = random_matrix(&mut rng);
            let sums = m.row_sums();
            for (r, total) in sums.iter().enumerate() {
                let s: f64 = m.row(r).map(|(_, v)| v).sum();
                assert!((total - s).abs() < 1e-12);
            }
        }
    }
}
