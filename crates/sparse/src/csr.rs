//! Compressed-sparse-row matrices.
//!
//! [`CsrMatrix`] is the workhorse representation for rate matrices and
//! transition-probability matrices throughout the workspace. Matrices are
//! built through [`CooBuilder`], which accepts coordinate-format entries in
//! any order, merges duplicates by addition, and drops explicit zeros.

use crate::error::BuildError;

/// Builder collecting coordinate-format (`(row, col, value)`) entries for a
/// [`CsrMatrix`].
///
/// Entries may be pushed in any order; duplicates are summed. Exact zeros are
/// dropped during [`build`](CooBuilder::build) so the resulting sparsity
/// pattern only contains structural non-zeros.
///
/// ```
/// use mrmc_sparse::CooBuilder;
///
/// let mut b = CooBuilder::new(2, 3);
/// b.push(1, 2, 4.0);
/// b.push(0, 0, 1.0);
/// b.push(1, 2, 1.0); // merged with the earlier (1, 2) entry
/// let m = b.build().unwrap();
/// assert_eq!(m.get(1, 2), 5.0);
/// assert_eq!(m.nnz(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CooBuilder {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooBuilder {
    /// Create a builder for an `nrows x ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooBuilder {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Create a builder with pre-allocated capacity for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooBuilder {
            nrows,
            ncols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of rows the built matrix will have.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns the built matrix will have.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Queue an entry. Bounds and finiteness are validated in
    /// [`build`](CooBuilder::build).
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> &mut Self {
        self.entries.push((row, col, value));
        self
    }

    /// Number of queued (unmerged) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries have been queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Build the CSR matrix, merging duplicate coordinates by addition and
    /// dropping entries that merged to exactly zero.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::IndexOutOfBounds`] for entries outside the
    /// declared shape and [`BuildError::NonFiniteValue`] for NaN/infinite
    /// values.
    pub fn build(mut self) -> Result<CsrMatrix, BuildError> {
        for &(r, c, v) in &self.entries {
            if r >= self.nrows || c >= self.ncols {
                return Err(BuildError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    nrows: self.nrows,
                    ncols: self.ncols,
                });
            }
            if !v.is_finite() {
                return Err(BuildError::NonFiniteValue { row: r, col: c });
            }
        }
        self.entries.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::with_capacity(self.entries.len());
        let mut values = Vec::with_capacity(self.entries.len());
        row_ptr.push(0);

        let mut current_row = 0usize;
        let mut i = 0usize;
        while i < self.entries.len() {
            let (r, c, mut v) = self.entries[i];
            i += 1;
            while i < self.entries.len() && self.entries[i].0 == r && self.entries[i].1 == c {
                v += self.entries[i].2;
                i += 1;
            }
            if v == 0.0 {
                continue;
            }
            while current_row < r {
                row_ptr.push(col_idx.len());
                current_row += 1;
            }
            col_idx.push(c);
            values.push(v);
        }
        while current_row < self.nrows {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }

        Ok(CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            col_idx,
            values,
        })
    }
}

/// An immutable matrix in compressed-sparse-row format.
///
/// Rows are stored contiguously; within each row, column indices are strictly
/// increasing. Use [`CooBuilder`] to construct one.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

/// Iterator over the `(column, value)` pairs of one matrix row, produced by
/// [`CsrMatrix::row`].
#[derive(Debug, Clone)]
pub struct RowEntries<'a> {
    cols: std::slice::Iter<'a, usize>,
    vals: std::slice::Iter<'a, f64>,
}

impl<'a> Iterator for RowEntries<'a> {
    type Item = (usize, f64);

    fn next(&mut self) -> Option<Self::Item> {
        Some((*self.cols.next()?, *self.vals.next()?))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.cols.size_hint()
    }
}

impl<'a> ExactSizeIterator for RowEntries<'a> {}

impl CsrMatrix {
    /// An `n x n` matrix with no stored entries.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Value at `(row, col)`, `0.0` when the entry is not stored.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.nrows, "row {row} out of bounds");
        assert!(col < self.ncols, "col {col} out of bounds");
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        match self.col_idx[lo..hi].binary_search(&col) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Iterate over the stored `(column, value)` pairs of `row` in increasing
    /// column order.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> RowEntries<'_> {
        assert!(row < self.nrows, "row {row} out of bounds");
        let lo = self.row_ptr[row];
        let hi = self.row_ptr[row + 1];
        RowEntries {
            cols: self.col_idx[lo..hi].iter(),
            vals: self.values[lo..hi].iter(),
        }
    }

    /// Number of stored entries in `row`.
    pub fn row_nnz(&self, row: usize) -> usize {
        self.row_ptr[row + 1] - self.row_ptr[row]
    }

    /// Iterate over all stored entries as `(row, col, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |r| self.row(r).map(move |(c, v)| (r, c, v)))
    }

    /// Sum of the stored values in each row.
    ///
    /// For a rate matrix this is the total exit rate `E(s)` of each state.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.nrows)
            .map(|r| self.row(r).map(|(_, v)| v).sum())
            .collect()
    }

    /// Matrix–vector product `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    #[allow(clippy::needless_range_loop)] // rows pair with dense outputs
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "mul_vec: length mismatch");
        let mut y = vec![0.0; self.nrows];
        // Block-structured kernel: four rows at a time, each with its own
        // sequential accumulator. Every row still adds its entries in CSR
        // order, so each `y[r]` is bitwise identical to the one-row-at-a-time
        // reference loop (kept in the tests below); the blocking only
        // overlaps the dependency chains of *different* rows, giving the
        // superscalar core four independent fused-multiply chains to retire.
        let mut r = 0usize;
        while r + 4 <= self.nrows {
            let s0 = self.row_ptr[r];
            let e0 = self.row_ptr[r + 1];
            let e1 = self.row_ptr[r + 2];
            let e2 = self.row_ptr[r + 3];
            let e3 = self.row_ptr[r + 4];
            let (c0, v0) = (&self.col_idx[s0..e0], &self.values[s0..e0]);
            let (c1, v1) = (&self.col_idx[e0..e1], &self.values[e0..e1]);
            let (c2, v2) = (&self.col_idx[e1..e2], &self.values[e1..e2]);
            let (c3, v3) = (&self.col_idx[e2..e3], &self.values[e2..e3]);
            let lock = c0.len().min(c1.len()).min(c2.len()).min(c3.len());
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0, 0.0, 0.0);
            for i in 0..lock {
                a0 += v0[i] * x[c0[i]];
                a1 += v1[i] * x[c1[i]];
                a2 += v2[i] * x[c2[i]];
                a3 += v3[i] * x[c3[i]];
            }
            // Ragged tails: keep accumulating term by term into the same
            // accumulator so the per-row addition order is unchanged.
            for i in lock..c0.len() {
                a0 += v0[i] * x[c0[i]];
            }
            for i in lock..c1.len() {
                a1 += v1[i] * x[c1[i]];
            }
            for i in lock..c2.len() {
                a2 += v2[i] * x[c2[i]];
            }
            for i in lock..c3.len() {
                a3 += v3[i] * x[c3[i]];
            }
            y[r] = a0;
            y[r + 1] = a1;
            y[r + 2] = a2;
            y[r + 3] = a3;
            r += 4;
        }
        for rr in r..self.nrows {
            let s = self.row_ptr[rr];
            let e = self.row_ptr[rr + 1];
            let mut acc = 0.0;
            for (c, v) in self.col_idx[s..e].iter().zip(&self.values[s..e]) {
                acc += v * x[*c];
            }
            y[rr] = acc;
        }
        y
    }

    /// Matrix–vector product `y = A·x` with Kahan-compensated row sums.
    ///
    /// Same four-wide row blocking as [`mul_vec`](CsrMatrix::mul_vec), but
    /// every row — lockstep body and ragged tail alike — folds through a
    /// compensated accumulator, bounding each row's summation error by a
    /// few ulps regardless of row length. Use this variant when the row
    /// sums are long and cancellation-prone; it is *not* bitwise
    /// interchangeable with `mul_vec` (the compensation changes the
    /// rounding), which is why the checking engines keep the uncompensated
    /// kernel as their default.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    #[allow(clippy::needless_range_loop)] // rows pair with dense outputs
    pub fn mul_vec_compensated(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "mul_vec_compensated: length mismatch");
        #[inline]
        fn kahan_add(sum: &mut f64, comp: &mut f64, term: f64) {
            let t = term - *comp;
            let s = *sum + t;
            *comp = (s - *sum) - t;
            *sum = s;
        }
        let mut y = vec![0.0; self.nrows];
        let mut r = 0usize;
        while r + 4 <= self.nrows {
            let s0 = self.row_ptr[r];
            let e0 = self.row_ptr[r + 1];
            let e1 = self.row_ptr[r + 2];
            let e2 = self.row_ptr[r + 3];
            let e3 = self.row_ptr[r + 4];
            let (c0, v0) = (&self.col_idx[s0..e0], &self.values[s0..e0]);
            let (c1, v1) = (&self.col_idx[e0..e1], &self.values[e0..e1]);
            let (c2, v2) = (&self.col_idx[e1..e2], &self.values[e1..e2]);
            let (c3, v3) = (&self.col_idx[e2..e3], &self.values[e2..e3]);
            let lock = c0.len().min(c1.len()).min(c2.len()).min(c3.len());
            let mut sum = [0.0f64; 4];
            let mut comp = [0.0f64; 4];
            for i in 0..lock {
                kahan_add(&mut sum[0], &mut comp[0], v0[i] * x[c0[i]]);
                kahan_add(&mut sum[1], &mut comp[1], v1[i] * x[c1[i]]);
                kahan_add(&mut sum[2], &mut comp[2], v2[i] * x[c2[i]]);
                kahan_add(&mut sum[3], &mut comp[3], v3[i] * x[c3[i]]);
            }
            for i in lock..c0.len() {
                kahan_add(&mut sum[0], &mut comp[0], v0[i] * x[c0[i]]);
            }
            for i in lock..c1.len() {
                kahan_add(&mut sum[1], &mut comp[1], v1[i] * x[c1[i]]);
            }
            for i in lock..c2.len() {
                kahan_add(&mut sum[2], &mut comp[2], v2[i] * x[c2[i]]);
            }
            for i in lock..c3.len() {
                kahan_add(&mut sum[3], &mut comp[3], v3[i] * x[c3[i]]);
            }
            y[r..r + 4].copy_from_slice(&sum);
            r += 4;
        }
        for rr in r..self.nrows {
            let s = self.row_ptr[rr];
            let e = self.row_ptr[rr + 1];
            let (mut sum, mut comp) = (0.0f64, 0.0f64);
            for (c, v) in self.col_idx[s..e].iter().zip(&self.values[s..e]) {
                kahan_add(&mut sum, &mut comp, v * x[*c]);
            }
            y[rr] = sum;
        }
        y
    }

    /// Vector–matrix product `y = x·A` (distribution propagation).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nrows`.
    #[allow(clippy::needless_range_loop)] // rows pair with dense inputs
    pub fn vec_mul(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows, "vec_mul: length mismatch");
        let mut y = vec![0.0; self.ncols];
        // Scatter kernel with a four-wide unrolled inner loop. Column
        // indices within a CSR row are strictly increasing, so the four
        // updates of one unrolled step always hit four *distinct* `y`
        // entries — reordering them cannot change any individual `y[c]`
        // accumulation order, and the result stays bitwise identical to the
        // plain scatter loop (kept in the tests below). Rows are processed
        // strictly in order because different rows may share columns.
        for r in 0..self.nrows {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            let s = self.row_ptr[r];
            let e = self.row_ptr[r + 1];
            let (cols, vals) = (&self.col_idx[s..e], &self.values[s..e]);
            let lock = cols.len() & !3;
            let mut i = 0usize;
            while i < lock {
                y[cols[i]] += xr * vals[i];
                y[cols[i + 1]] += xr * vals[i + 1];
                y[cols[i + 2]] += xr * vals[i + 2];
                y[cols[i + 3]] += xr * vals[i + 3];
                i += 4;
            }
            for i in lock..cols.len() {
                y[cols[i]] += xr * vals[i];
            }
        }
        y
    }

    /// The transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols];
        for &c in &self.col_idx {
            counts[c] += 1;
        }
        let mut row_ptr = Vec::with_capacity(self.ncols + 1);
        row_ptr.push(0);
        for c in 0..self.ncols {
            row_ptr.push(row_ptr[c] + counts[c]);
        }
        let mut next = row_ptr[..self.ncols].to_vec();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                let k = next[c];
                next[c] += 1;
                col_idx[k] = r;
                values[k] = v;
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// A copy with every stored value transformed by `f`.
    ///
    /// Entries mapped to exactly zero are kept structurally; use
    /// [`CooBuilder`] to re-compress if that matters.
    pub fn map_values(&self, mut f: impl FnMut(usize, usize, f64) -> f64) -> CsrMatrix {
        let mut out = self.clone();
        for r in 0..self.nrows {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            for k in lo..hi {
                out.values[k] = f(r, self.col_idx[k], self.values[k]);
            }
        }
        out
    }

    /// A copy scaled by `alpha`.
    pub fn scaled(&self, alpha: f64) -> CsrMatrix {
        self.map_values(|_, _, v| alpha * v)
    }

    /// Convert to a dense row-major `Vec<Vec<f64>>` (intended for tests and
    /// small direct solves).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.ncols]; self.nrows];
        for (r, c, v) in self.iter() {
            d[r][c] = v;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;

    fn sample() -> CsrMatrix {
        // [ 0.5 0.5 0   ]
        // [ 0.25 0 0.75 ]
        // [ 0.2 0.6 0.2 ]
        let mut b = CooBuilder::new(3, 3);
        b.push(0, 0, 0.5).push(0, 1, 0.5);
        b.push(1, 0, 0.25).push(1, 2, 0.75);
        b.push(2, 0, 0.2).push(2, 1, 0.6).push(2, 2, 0.2);
        b.build().unwrap()
    }

    #[test]
    fn build_and_get() {
        let m = sample();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 7);
        assert_eq!(m.get(0, 0), 0.5);
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(m.get(1, 2), 0.75);
    }

    #[test]
    fn duplicates_merge_and_zeros_drop() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 0, 1.0)
            .push(0, 0, 2.0)
            .push(1, 1, 5.0)
            .push(1, 1, -5.0);
        let m = b.build().unwrap();
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn out_of_bounds_entry_rejected() {
        let mut b = CooBuilder::new(2, 2);
        b.push(2, 0, 1.0);
        assert!(matches!(
            b.build(),
            Err(BuildError::IndexOutOfBounds { row: 2, .. })
        ));
    }

    #[test]
    fn non_finite_entry_rejected() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 0, f64::NAN);
        assert!(matches!(
            b.build(),
            Err(BuildError::NonFiniteValue { row: 0, col: 0 })
        ));
    }

    #[test]
    fn empty_rows_are_fine() {
        let mut b = CooBuilder::new(4, 4);
        b.push(3, 0, 1.0);
        let m = b.build().unwrap();
        assert_eq!(m.row(0).count(), 0);
        assert_eq!(m.row(3).count(), 1);
        assert_eq!(m.row_nnz(1), 0);
    }

    #[test]
    fn row_iteration_sorted() {
        let mut b = CooBuilder::new(1, 5);
        b.push(0, 4, 4.0).push(0, 1, 1.0).push(0, 3, 3.0);
        let m = b.build().unwrap();
        let row: Vec<_> = m.row(0).collect();
        assert_eq!(row, vec![(1, 1.0), (3, 3.0), (4, 4.0)]);
    }

    #[test]
    fn mul_vec_and_vec_mul() {
        let m = sample();
        // A·x with x = e0.
        assert_eq!(m.mul_vec(&[1.0, 0.0, 0.0]), vec![0.5, 0.25, 0.2]);
        // x·A with x = e0 (one DTMC step from state 0).
        assert_eq!(m.vec_mul(&[1.0, 0.0, 0.0]), vec![0.5, 0.5, 0.0]);
    }

    #[test]
    fn transient_example_2_2_of_the_thesis() {
        // p(3) = p(0) · P^3 for the DTMC of Figure 2.1.
        let m = sample();
        let mut p = vec![1.0, 0.0, 0.0];
        for _ in 0..3 {
            p = m.vec_mul(&p);
        }
        assert!((p[0] - 0.325).abs() < 1e-12);
        assert!((p[1] - 0.4125).abs() < 1e-12);
        assert!((p[2] - 0.2625).abs() < 1e-12);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(0, 1), 0.25);
        assert_eq!(t.get(2, 1), 0.75);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn row_sums_are_exit_rates() {
        let m = sample();
        let sums = m.row_sums();
        for s in sums {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn identity_and_zeros() {
        let i = CsrMatrix::identity(3);
        assert_eq!(i.mul_vec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
        let z = CsrMatrix::zeros(2, 3);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.mul_vec(&[1.0, 1.0, 1.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn map_and_scale() {
        let m = sample().scaled(2.0);
        assert_eq!(m.get(1, 2), 1.5);
        let m2 = m.map_values(|r, c, v| if r == c { 0.0 } else { v });
        assert_eq!(m2.get(0, 0), 0.0);
        assert_eq!(m2.get(0, 1), 1.0);
    }

    #[test]
    fn to_dense_matches() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d[1], vec![0.25, 0.0, 0.75]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        sample().get(3, 0);
    }

    fn random_matrix(rng: &mut Xoshiro256StarStar) -> CsrMatrix {
        let r = 1 + rng.range_usize(7);
        let c = 1 + rng.range_usize(7);
        let mut b = CooBuilder::new(r, c);
        for _ in 0..rng.range_usize(24) {
            b.push(
                rng.range_usize(r),
                rng.range_usize(c),
                rng.range_f64(-10.0, 10.0),
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn transpose_is_involution() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xC5A1);
        for _ in 0..64 {
            let m = random_matrix(&mut rng);
            assert_eq!(m.transpose().transpose(), m);
        }
    }

    #[test]
    fn mul_vec_matches_dense() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xC5A2);
        for seed in 0..64u64 {
            let m = random_matrix(&mut rng);
            let x: Vec<f64> = (0..m.ncols())
                .map(|i| ((seed as f64) + i as f64).sin())
                .collect();
            let y = m.mul_vec(&x);
            let d = m.to_dense();
            for r in 0..m.nrows() {
                let expect: f64 = (0..m.ncols()).map(|c| d[r][c] * x[c]).sum();
                assert!((y[r] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn vec_mul_agrees_with_transpose_mul_vec() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xC5A3);
        for seed in 0..64u64 {
            let m = random_matrix(&mut rng);
            let x: Vec<f64> = (0..m.nrows())
                .map(|i| ((seed as f64) * 0.37 + i as f64).cos())
                .collect();
            let a = m.vec_mul(&x);
            let b = m.transpose().mul_vec(&x);
            for (u, v) in a.iter().zip(&b) {
                assert!((u - v).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn row_sums_match_iteration() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xC5A4);
        for _ in 0..64 {
            let m = random_matrix(&mut rng);
            let sums = m.row_sums();
            for (r, total) in sums.iter().enumerate() {
                let s: f64 = m.row(r).map(|(_, v)| v).sum();
                assert!((total - s).abs() < 1e-12);
            }
        }
    }

    // ----- blocked-kernel property tests -------------------------------
    //
    // The four-wide blocked `mul_vec` and the unrolled `vec_mul` scatter
    // promise *bitwise* equality with the straightforward reference loops
    // below — that is what lets every engine adopt the fast kernels without
    // perturbing a single probability.

    /// The pre-blocking `mul_vec`: one row at a time, sequential accumulator.
    fn reference_mul_vec(m: &CsrMatrix, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; m.nrows()];
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, v) in m.row(r) {
                acc += v * x[c];
            }
            *yr = acc;
        }
        y
    }

    /// The pre-blocking `vec_mul`: rows in order, plain scatter loop.
    fn reference_vec_mul(m: &CsrMatrix, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; m.ncols()];
        for (r, &xr) in x.iter().enumerate().take(m.nrows()) {
            if xr == 0.0 {
                continue;
            }
            for (c, v) in m.row(r) {
                y[c] += xr * v;
            }
        }
        y
    }

    /// Kahan reference for the compensated kernel: one row at a time.
    fn reference_mul_vec_compensated(m: &CsrMatrix, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; m.nrows()];
        for (r, yr) in y.iter_mut().enumerate() {
            let (mut sum, mut comp) = (0.0f64, 0.0f64);
            for (c, v) in m.row(r) {
                let term = v * x[c];
                let t = term - comp;
                let s = sum + t;
                comp = (s - sum) - t;
                sum = s;
            }
            *yr = sum;
        }
        y
    }

    /// Larger random matrices than [`random_matrix`]: enough rows that the
    /// four-wide blocks, their ragged tails, and the row remainder
    /// (`nrows % 4 ≠ 0`) all get exercised, with row populations varying
    /// from empty to dense.
    fn random_blocked_matrix(rng: &mut Xoshiro256StarStar) -> CsrMatrix {
        let r = 1 + rng.range_usize(40);
        let c = 1 + rng.range_usize(24);
        let mut b = CooBuilder::new(r, c);
        for row in 0..r {
            // Leave roughly a fifth of the rows structurally empty.
            if rng.range_usize(5) == 0 {
                continue;
            }
            for _ in 0..rng.range_usize(c + 1) {
                b.push(row, rng.range_usize(c), rng.range_f64(-10.0, 10.0));
            }
        }
        b.build().unwrap()
    }

    fn assert_bits_eq(label: &str, seed: u64, got: &[f64], expect: &[f64]) {
        assert_eq!(got.len(), expect.len(), "{label}: seed {seed}");
        for (i, (g, e)) in got.iter().zip(expect).enumerate() {
            assert_eq!(
                g.to_bits(),
                e.to_bits(),
                "{label}: seed {seed}, index {i}: {g} vs {e}"
            );
        }
    }

    #[test]
    fn blocked_mul_vec_is_bitwise_reference_on_random_matrices() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xB10C);
        for seed in 0..64u64 {
            let m = random_blocked_matrix(&mut rng);
            let x: Vec<f64> = (0..m.ncols())
                .map(|i| rng.range_f64(-1.0, 1.0) * (1.0 + i as f64))
                .collect();
            assert_bits_eq("mul_vec", seed, &m.mul_vec(&x), &reference_mul_vec(&m, &x));
            assert_bits_eq(
                "mul_vec_compensated",
                seed,
                &m.mul_vec_compensated(&x),
                &reference_mul_vec_compensated(&m, &x),
            );
        }
    }

    #[test]
    fn unrolled_vec_mul_is_bitwise_reference_on_random_matrices() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xB10D);
        for seed in 0..64u64 {
            let m = random_blocked_matrix(&mut rng);
            let x: Vec<f64> = (0..m.nrows())
                .map(|i| {
                    // Mix in exact zeros so the scatter's skip path runs.
                    if i % 3 == 0 {
                        0.0
                    } else {
                        rng.range_f64(-2.0, 2.0)
                    }
                })
                .collect();
            assert_bits_eq("vec_mul", seed, &m.vec_mul(&x), &reference_vec_mul(&m, &x));
        }
    }

    #[test]
    fn blocked_kernels_handle_edge_shapes() {
        // Single row (no full block), empty rows inside a block, and a row
        // count that is not a multiple of the block width.
        let single = {
            let mut b = CooBuilder::new(1, 5);
            b.push(0, 0, 1.0).push(0, 3, -2.0).push(0, 4, 0.5);
            b.build().unwrap()
        };
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_bits_eq(
            "single-row",
            0,
            &single.mul_vec(&x),
            &reference_mul_vec(&single, &x),
        );

        let ragged = {
            // Seven rows (one full block + three remainder rows); rows 1, 2
            // and 5 empty; row lengths 5, 0, 0, 1, 2, 0, 3 — none a
            // multiple of the block width.
            let mut b = CooBuilder::new(7, 6);
            for c in 0..5 {
                b.push(0, c, 0.1 + c as f64);
            }
            b.push(3, 2, -7.0);
            b.push(4, 0, 3.0).push(4, 5, -1.5);
            b.push(6, 1, 0.25).push(6, 3, 0.5).push(6, 4, 1.0);
            b.build().unwrap()
        };
        let x6 = [0.5, -1.0, 2.0, 0.0, 1.0, -3.0];
        let x7 = [1.0, 0.0, -1.0, 2.0, 0.5, 0.0, -0.25];
        assert_bits_eq(
            "ragged mul_vec",
            0,
            &ragged.mul_vec(&x6),
            &reference_mul_vec(&ragged, &x6),
        );
        assert_bits_eq(
            "ragged mul_vec_compensated",
            0,
            &ragged.mul_vec_compensated(&x6),
            &reference_mul_vec_compensated(&ragged, &x6),
        );
        assert_bits_eq(
            "ragged vec_mul",
            0,
            &ragged.vec_mul(&x7),
            &reference_vec_mul(&ragged, &x7),
        );

        let empty = CsrMatrix::zeros(9, 4);
        assert_bits_eq("all-empty mul_vec", 0, &empty.mul_vec(&[1.0; 4]), &[0.0; 9]);
        assert_bits_eq("all-empty vec_mul", 0, &empty.vec_mul(&[1.0; 9]), &[0.0; 4]);
    }

    #[test]
    fn compensated_kernel_is_at_least_as_accurate() {
        // A cancellation-heavy row — 10_000 unit terms sandwiched between
        // ±1e16 — where plain summation loses every unit term to rounding
        // but the compensated accumulator carries them in its correction.
        let n = 10_000usize;
        let mut b = CooBuilder::new(1, n + 2);
        b.push(0, 0, 1e16);
        for c in 1..=n {
            b.push(0, c, 1.0);
        }
        b.push(0, n + 1, -1e16);
        let m = b.build().unwrap();
        let x = vec![1.0; n + 2];
        let exact = n as f64;
        let plain_err = (m.mul_vec(&x)[0] - exact).abs();
        let comp_err = (m.mul_vec_compensated(&x)[0] - exact).abs();
        assert!(comp_err <= plain_err, "{comp_err} vs {plain_err}");
        assert!(comp_err <= 1e-6 * exact, "compensated error {comp_err}");
    }
}
