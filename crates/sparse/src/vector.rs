//! Dense-vector kernels shared by the solvers and the model-checking
//! algorithms.
//!
//! All functions panic on length mismatches: these are programming errors,
//! not recoverable conditions, and every caller in the workspace constructs
//! the vectors itself.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// assert_eq!(mrmc_sparse::vector::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Sum of all entries.
pub fn sum(v: &[f64]) -> f64 {
    v.iter().sum()
}

/// Maximum absolute entry (`0.0` for an empty slice).
pub fn norm_inf(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
}

/// Sum of absolute entries.
pub fn norm_l1(v: &[f64]) -> f64 {
    v.iter().map(|x| x.abs()).sum()
}

/// Maximum absolute component-wise difference between two vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b)
        .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
}

/// Normalize `v` in place so its entries sum to one.
///
/// Returns `false` (leaving `v` untouched) when the entry sum is zero or
/// non-finite, which callers treat as a degenerate distribution.
pub fn normalize_l1(v: &mut [f64]) -> bool {
    let s = sum(v);
    if s == 0.0 || !s.is_finite() {
        return false;
    }
    for x in v.iter_mut() {
        *x /= s;
    }
    true
}

/// Scale every entry of `v` in place by `alpha`.
pub fn scale(v: &mut [f64], alpha: f64) {
    for x in v.iter_mut() {
        *x *= alpha;
    }
}

/// Clamp every entry of `v` into `[0, 1]`.
///
/// Iterative probability computations can stray out of the unit interval by
/// a few ulps; the model checker clamps before comparing against probability
/// bounds.
pub fn clamp_unit(v: &mut [f64]) {
    for x in v.iter_mut() {
        *x = x.clamp(0.0, 1.0);
    }
}

/// `true` when every entry is finite.
pub fn all_finite(v: &[f64]) -> bool {
    v.iter().all(|x| x.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot(&[1.0, -2.0, 3.0], &[4.0, 5.0, 6.0]), 12.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn norms() {
        let v = [3.0, -4.0, 0.5];
        assert_eq!(norm_inf(&v), 4.0);
        assert_eq!(norm_l1(&v), 7.5);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn max_abs_diff_basic() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 0.0]), 2.0);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }

    #[test]
    fn normalize_l1_makes_distribution() {
        let mut v = vec![1.0, 3.0];
        assert!(normalize_l1(&mut v));
        assert_eq!(v, vec![0.25, 0.75]);
    }

    #[test]
    fn normalize_l1_rejects_zero_vector() {
        let mut v = vec![0.0, 0.0];
        assert!(!normalize_l1(&mut v));
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn clamp_unit_clamps() {
        let mut v = vec![-1e-17, 0.5, 1.0 + 1e-15];
        clamp_unit(&mut v);
        assert_eq!(v, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn all_finite_detects_nan() {
        assert!(all_finite(&[0.0, 1.0]));
        assert!(!all_finite(&[0.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }

    fn random_vec(rng: &mut Xoshiro256StarStar, max_len: usize, lo: f64, hi: f64) -> Vec<f64> {
        let len = rng.range_usize(max_len + 1);
        (0..len).map(|_| rng.range_f64(lo, hi)).collect()
    }

    #[test]
    fn dot_is_symmetric() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xD07);
        for _ in 0..64 {
            let v = random_vec(&mut rng, 31, -1e3, 1e3);
            let w: Vec<f64> = v.iter().rev().copied().collect();
            let d1 = dot(&v, &w);
            let d2 = dot(&w, &v);
            assert!((d1 - d2).abs() <= 1e-9 * (1.0 + d1.abs()));
        }
    }

    #[test]
    fn normalized_vector_sums_to_one() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x7E57);
        for _ in 0..64 {
            let mut v = random_vec(&mut rng, 30, 0.0, 1e3);
            v.push(rng.range_f64(0.0, 1e3)); // never empty
            if normalize_l1(&mut v) {
                assert!((sum(&v) - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn norm_inf_bounds_entries() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x1F);
        for _ in 0..64 {
            let v = random_vec(&mut rng, 31, -1e6, 1e6);
            let m = norm_inf(&v);
            for x in &v {
                assert!(x.abs() <= m);
            }
        }
    }
}
