//! Sparse and dense linear algebra substrate for the `mrmc` workspace.
//!
//! This crate provides exactly the numeric kernels the model-checking
//! algorithms of *Model Checking Markov Reward Models with Impulse Rewards*
//! need:
//!
//! * [`CsrMatrix`] — compressed-sparse-row matrices used for rate matrices,
//!   embedded/uniformized transition-probability matrices and generator
//!   matrices;
//! * [`DenseMatrix`] — small dense matrices with Gaussian elimination, used
//!   for direct solutions and for cross-checking the iterative solvers;
//! * [`solver`] — iterative solvers (Gauss–Seidel, Jacobi, power iteration)
//!   for the linear systems arising in steady-state and unbounded-reachability
//!   analysis;
//! * [`vector`] — the handful of dense-vector kernels everything shares;
//! * [`rng`] — a deterministic in-tree pseudo-random generator
//!   (SplitMix64 / xoshiro256**), so the workspace builds and tests with
//!   no external `rand` dependency (hermetic, offline builds).
//!
//! # Example
//!
//! ```
//! use mrmc_sparse::{CooBuilder, vector};
//!
//! let mut b = CooBuilder::new(2, 2);
//! b.push(0, 0, 0.5);
//! b.push(0, 1, 0.5);
//! b.push(1, 1, 1.0);
//! let m = b.build().unwrap();
//! // Propagate a distribution one step: y = x · M.
//! let y = m.vec_mul(&[1.0, 0.0]);
//! assert_eq!(y, vec![0.5, 0.5]);
//! assert!((vector::sum(&y) - 1.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csr;
mod dense;
mod error;
pub mod rng;
pub mod solver;
pub mod vector;

pub use csr::{CooBuilder, CsrMatrix, RowEntries};
pub use dense::DenseMatrix;
pub use error::{BuildError, SolveError};
