//! Error types for matrix construction and linear-system solving.

use std::error::Error;
use std::fmt;

/// An error raised while building a matrix from coordinate-format entries.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// An entry `(row, col)` lies outside the declared dimensions.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// Declared number of rows.
        nrows: usize,
        /// Declared number of columns.
        ncols: usize,
    },
    /// An entry value is NaN or infinite.
    NonFiniteValue {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row}, {col}) out of bounds for a {nrows}x{ncols} matrix"
            ),
            BuildError::NonFiniteValue { row, col } => {
                write!(f, "entry ({row}, {col}) has a non-finite value")
            }
        }
    }
}

impl Error for BuildError {}

/// An error raised by a linear-system solver.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The coefficient matrix (or system) is singular up to the pivot
    /// tolerance, so no unique solution exists.
    Singular,
    /// An iterative method failed to reach the requested tolerance.
    NotConverged {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// The residual (maximum absolute update) at the last iteration.
        residual: f64,
    },
    /// Vector/matrix dimensions do not line up.
    DimensionMismatch {
        /// What was expected, e.g. a vector length.
        expected: usize,
        /// What was found.
        found: usize,
    },
    /// A diagonal entry needed by the method is (numerically) zero.
    ZeroDiagonal {
        /// Index of the zero diagonal entry.
        index: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Singular => write!(f, "matrix is singular"),
            SolveError::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "solver did not converge after {iterations} iterations (residual {residual:e})"
            ),
            SolveError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            SolveError::ZeroDiagonal { index } => {
                write!(f, "zero diagonal entry at index {index}")
            }
        }
    }
}

impl Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BuildError::IndexOutOfBounds {
            row: 3,
            col: 4,
            nrows: 2,
            ncols: 2,
        };
        assert!(e.to_string().contains("(3, 4)"));
        assert!(e.to_string().contains("2x2"));

        let e = SolveError::NotConverged {
            iterations: 10,
            residual: 0.5,
        };
        assert!(e.to_string().contains("10"));

        let e = SolveError::DimensionMismatch {
            expected: 5,
            found: 3,
        };
        assert!(e.to_string().contains("expected 5"));

        let e = SolveError::ZeroDiagonal { index: 7 };
        assert!(e.to_string().contains('7'));

        assert_eq!(SolveError::Singular.to_string(), "matrix is singular");
    }

    #[test]
    fn errors_implement_error_trait() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<BuildError>();
        assert_error::<SolveError>();
    }
}
