//! Jacobi iteration for `A·x = b`.

use super::SolverOptions;
use crate::error::SolveError;
use crate::CsrMatrix;

/// Solve `A·x = b` by Jacobi sweeps, starting from `x0`.
///
/// Converges more slowly than [`super::gauss_seidel`] but does not depend on
/// the state enumeration order; the test suites use it to cross-check
/// Gauss–Seidel results.
///
/// # Errors
///
/// Same contract as [`super::gauss_seidel`]: dimension mismatches, zero
/// diagonals, and non-convergence are reported as typed errors.
pub fn jacobi(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    options: SolverOptions,
) -> Result<Vec<f64>, SolveError> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            found: a.ncols(),
        });
    }
    if b.len() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            found: b.len(),
        });
    }
    if x0.len() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            found: x0.len(),
        });
    }

    let mut diag = vec![0.0; n];
    #[allow(clippy::needless_range_loop)] // r also indexes the matrix rows
    for r in 0..n {
        for (c, v) in a.row(r) {
            if c == r {
                diag[r] = v;
            }
        }
        if diag[r].abs() < 1e-300 {
            return Err(SolveError::ZeroDiagonal { index: r });
        }
    }

    let mut x = x0.to_vec();
    let mut next = vec![0.0; n];
    let mut residual = f64::INFINITY;
    for iteration in 1..=options.max_iterations {
        residual = 0.0;
        for r in 0..n {
            let mut acc = b[r];
            for (c, v) in a.row(r) {
                if c != r {
                    acc -= v * x[c];
                }
            }
            next[r] = acc / diag[r];
            residual = residual.max((next[r] - x[r]).abs());
        }
        std::mem::swap(&mut x, &mut next);
        if residual <= options.tolerance {
            return Ok(x);
        }
        if !residual.is_finite() {
            return Err(SolveError::NotConverged {
                iterations: iteration,
                residual,
            });
        }
    }
    Err(SolveError::NotConverged {
        iterations: options.max_iterations,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::super::gauss_seidel;
    use super::*;
    use crate::CooBuilder;

    fn matrix(rows: &[Vec<f64>]) -> CsrMatrix {
        let mut b = CooBuilder::new(rows.len(), rows[0].len());
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    b.push(i, j, v);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn agrees_with_gauss_seidel() {
        let a = matrix(&[
            vec![10.0, -1.0, 2.0],
            vec![-1.0, 11.0, -1.0],
            vec![2.0, -1.0, 10.0],
        ]);
        let b = [6.0, 25.0, -11.0];
        let xj = jacobi(&a, &b, &[0.0; 3], SolverOptions::new()).unwrap();
        let xg = gauss_seidel(&a, &b, &[0.0; 3], SolverOptions::new()).unwrap();
        for (u, v) in xj.iter().zip(&xg) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_diagonal_rejected() {
        let a = matrix(&[vec![0.0, 1.0], vec![1.0, 1.0]]);
        assert_eq!(
            jacobi(&a, &[1.0, 1.0], &[0.0, 0.0], SolverOptions::new()),
            Err(SolveError::ZeroDiagonal { index: 0 })
        );
    }

    #[test]
    fn non_convergence_reported() {
        let a = matrix(&[vec![1.0, 10.0], vec![10.0, 1.0]]);
        let opts = SolverOptions::new().with_max_iterations(25);
        assert!(matches!(
            jacobi(&a, &[1.0, 1.0], &[0.0, 0.0], opts),
            Err(SolveError::NotConverged { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_reported() {
        let a = matrix(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert!(matches!(
            jacobi(&a, &[1.0], &[0.0, 0.0], SolverOptions::new()),
            Err(SolveError::DimensionMismatch { .. })
        ));
    }
}
