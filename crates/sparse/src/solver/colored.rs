//! Multicolor (greedy-colored) parallel Gauss–Seidel for `A·x = b`.
//!
//! Plain Gauss–Seidel is inherently sequential: row `r` reads the values
//! this sweep already wrote to earlier rows. The multicolor variant breaks
//! that chain structurally. Rows are partitioned into *color classes* such
//! that no two rows in a class are adjacent in the symmetrized sparsity
//! pattern of `A` (neither `A[r][c]` nor `A[c][r]` is structurally
//! non-zero for same-class rows `r ≠ c`). Within a class, no row's update
//! reads another class member's entry — so all rows of a class can be
//! updated concurrently from the same pre-class snapshot of `x`, and the
//! result is **independent of how the work is scheduled**.
//!
//! The fixed reference ordering is *class-major, ascending row index
//! within each class*. The serial path (`threads ≤ 1`) walks exactly that
//! order; the parallel path partitions each class into contiguous chunks,
//! lets scoped workers compute chunk updates against the shared immutable
//! `x`, and applies the chunks back in chunk order. Because same-class
//! updates never read each other, the applied values are bitwise identical
//! to the serial walk at any thread count, and the residual is folded with
//! `f64::max` — exact and order-insensitive. The iteration *order* differs
//! from plain [`gauss_seidel`](super::gauss_seidel) (rows are visited
//! class-major, not index-major), so the two converge to the same solution
//! within tolerance but are not ulp-for-ulp interchangeable; determinism
//! is promised per solver across thread counts, not across solvers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

use super::SolverOptions;
use crate::error::SolveError;
use crate::CsrMatrix;

/// Rows grouped into dependency-free classes by greedy coloring of the
/// symmetrized sparsity pattern.
#[derive(Debug, Clone)]
struct Coloring {
    /// `classes[c]` lists the rows of color `c` in ascending order.
    classes: Vec<Vec<usize>>,
}

/// Greedy first-fit coloring over the symmetrized off-diagonal adjacency.
///
/// Rows are visited in ascending index order; each takes the smallest
/// color unused by its already-colored neighbors. For the banded and
/// block-structured matrices model checking produces this degenerates to
/// the classic red–black split (two colors) or close to it; the color
/// count is bounded by the maximum symmetrized degree plus one.
fn greedy_coloring(a: &CsrMatrix, at: &CsrMatrix) -> Coloring {
    let n = a.nrows();
    let mut color = vec![usize::MAX; n];
    let mut classes: Vec<Vec<usize>> = Vec::new();
    // Scratch: colors seen among neighbors, reset per row via a stamp.
    let mut seen_stamp = vec![usize::MAX; n + 1];
    for r in 0..n {
        for (c, _) in a.row(r).chain(at.row(r)) {
            if c != r && color[c] != usize::MAX {
                seen_stamp[color[c]] = r;
            }
        }
        let mut pick = 0usize;
        while seen_stamp[pick] == r {
            pick += 1;
        }
        color[r] = pick;
        if pick == classes.len() {
            classes.push(Vec::new());
        }
        classes[pick].push(r);
    }
    Coloring { classes }
}

/// Solve `A·x = b` by multicolor Gauss–Seidel sweeps, starting from `x0`.
///
/// Converges for the same diagonally dominant systems as
/// [`gauss_seidel`](super::gauss_seidel); the update order is class-major
/// (see the module docs), and `options.threads` workers update each color
/// class in parallel. The result is bitwise identical for every thread
/// count, including the serial `threads ≤ 1` path.
///
/// Emits the `solver_colors` counter (number of color classes) alongside
/// the usual `solver_sweep`/`solver_done` telemetry.
///
/// # Errors
///
/// * [`SolveError::DimensionMismatch`] — `A` not square or `b`/`x0` of the
///   wrong length;
/// * [`SolveError::ZeroDiagonal`] — a row of `A` has no usable diagonal
///   entry;
/// * [`SolveError::NotConverged`] — the iteration cap was reached (or the
///   residual left the finite range) before the maximum absolute update
///   fell below the tolerance.
pub fn gauss_seidel_colored(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    options: SolverOptions,
) -> Result<Vec<f64>, SolveError> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            found: a.ncols(),
        });
    }
    if b.len() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            found: b.len(),
        });
    }
    if x0.len() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            found: x0.len(),
        });
    }

    // Pre-extract diagonals and verify them once.
    let mut diag = vec![0.0; n];
    #[allow(clippy::needless_range_loop)] // r also indexes the matrix rows
    for r in 0..n {
        for (c, v) in a.row(r) {
            if c == r {
                diag[r] = v;
            }
        }
        if diag[r].abs() < 1e-300 {
            return Err(SolveError::ZeroDiagonal { index: r });
        }
    }

    let at = a.transpose();
    let coloring = greedy_coloring(a, &at);
    mrmc_obs::record(|| mrmc_obs::Event::Counter {
        name: mrmc_obs::counters::SOLVER_COLORS,
        value: coloring.classes.len() as u64,
    });

    let threads = effective_threads(options.threads);
    // Chunk granularity: enough chunks that the pool load-balances, large
    // enough that the per-chunk send amortizes.
    const MIN_CHUNK: usize = 64;

    let _span = mrmc_obs::span("solver");
    let mut x = x0.to_vec();
    let mut residual = f64::INFINITY;
    for iteration in 1..=options.max_iterations {
        residual = 0.0;
        for class in &coloring.classes {
            if threads <= 1 || class.len() < 2 * MIN_CHUNK {
                // Serial reference order: ascending row index. Immediate
                // writes are safe — same-class rows never read each other.
                for &r in class {
                    let next = update_row(a, b, &diag, &x, r);
                    residual = residual.max((next - x[r]).abs());
                    x[r] = next;
                }
            } else {
                let chunk = (class.len().div_ceil(threads)).max(MIN_CHUNK);
                let chunks: Vec<&[usize]> = class.chunks(chunk).collect();
                let mut slots: Vec<Option<Vec<f64>>> = vec![None; chunks.len()];
                let cursor = AtomicUsize::new(0);
                let (tx, rx) = mpsc::channel::<(usize, Vec<f64>)>();
                thread::scope(|scope| {
                    for _ in 0..threads.min(chunks.len()) {
                        let tx = tx.clone();
                        let x = &x;
                        let chunks = &chunks;
                        let cursor = &cursor;
                        let diag = &diag;
                        scope.spawn(move || loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(rows) = chunks.get(i) else { break };
                            let values: Vec<f64> =
                                rows.iter().map(|&r| update_row(a, b, diag, x, r)).collect();
                            if tx.send((i, values)).is_err() {
                                break;
                            }
                        });
                    }
                    drop(tx);
                    for (i, values) in rx {
                        slots[i] = Some(values);
                    }
                });
                // Apply in chunk order — the same ascending row order the
                // serial path walks, so the write-back (and the exact,
                // order-insensitive max fold) reproduce its bits.
                for (rows, slot) in chunks.iter().zip(slots) {
                    let values = slot.expect("worker completed every claimed chunk");
                    for (&r, &next) in rows.iter().zip(&values) {
                        residual = residual.max((next - x[r]).abs());
                        x[r] = next;
                    }
                }
            }
        }
        mrmc_obs::record(|| mrmc_obs::Event::SolverSweep {
            iteration: iteration as u64,
            residual,
        });
        if residual <= options.tolerance {
            mrmc_obs::record(|| mrmc_obs::Event::SolverDone {
                iterations: iteration as u64,
                residual,
                converged: true,
            });
            return Ok(x);
        }
        if !residual.is_finite() {
            mrmc_obs::record(|| mrmc_obs::Event::SolverDone {
                iterations: iteration as u64,
                residual,
                converged: false,
            });
            return Err(SolveError::NotConverged {
                iterations: iteration,
                residual,
            });
        }
    }
    mrmc_obs::record(|| mrmc_obs::Event::SolverDone {
        iterations: options.max_iterations as u64,
        residual,
        converged: false,
    });
    Err(SolveError::NotConverged {
        iterations: options.max_iterations,
        residual,
    })
}

/// One Gauss–Seidel row update read against the current `x`.
#[inline]
fn update_row(a: &CsrMatrix, b: &[f64], diag: &[f64], x: &[f64], r: usize) -> f64 {
    let mut acc = b[r];
    for (c, v) in a.row(r) {
        if c != r {
            acc -= v * x[c];
        }
    }
    acc / diag[r]
}

/// `0` means "use the host's available parallelism".
fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        thread::available_parallelism().map_or(1, usize::from)
    } else {
        threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;
    use crate::{CooBuilder, DenseMatrix};

    fn matrix(rows: &[Vec<f64>]) -> CsrMatrix {
        let mut b = CooBuilder::new(rows.len(), rows[0].len());
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    b.push(i, j, v);
                }
            }
        }
        b.build().unwrap()
    }

    fn with_threads(threads: usize) -> SolverOptions {
        SolverOptions::new().with_threads(threads)
    }

    #[test]
    fn coloring_separates_adjacent_rows() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xC0105);
        for _ in 0..32 {
            let n = 2 + rng.range_usize(30);
            let mut b = CooBuilder::new(n, n);
            for r in 0..n {
                b.push(r, r, 8.0);
                for _ in 0..rng.range_usize(4) {
                    b.push(r, rng.range_usize(n), rng.range_f64(-1.0, 1.0));
                }
            }
            let a = b.build().unwrap();
            let at = a.transpose();
            let coloring = greedy_coloring(&a, &at);
            let mut color = vec![usize::MAX; n];
            for (ci, class) in coloring.classes.iter().enumerate() {
                for &r in class {
                    color[r] = ci;
                }
            }
            assert!(color.iter().all(|&c| c != usize::MAX));
            for r in 0..n {
                for (c, _) in a.row(r) {
                    if c != r {
                        assert_ne!(
                            color[r], color[c],
                            "adjacent rows {r} and {c} share a color"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tridiagonal_coloring_is_red_black() {
        // The classic case: a tridiagonal pattern needs exactly two colors.
        let n = 17;
        let mut b = CooBuilder::new(n, n);
        for r in 0..n {
            b.push(r, r, 4.0);
            if r > 0 {
                b.push(r, r - 1, -1.0);
            }
            if r + 1 < n {
                b.push(r, r + 1, -1.0);
            }
        }
        let a = b.build().unwrap();
        let at = a.transpose();
        let coloring = greedy_coloring(&a, &at);
        assert_eq!(coloring.classes.len(), 2);
        // Even rows land in class 0, odd rows in class 1.
        assert!(coloring.classes[0].iter().all(|r| r % 2 == 0));
        assert!(coloring.classes[1].iter().all(|r| r % 2 == 1));
    }

    #[test]
    fn solves_diagonally_dominant_system() {
        let a = matrix(&[
            vec![10.0, -1.0, 2.0],
            vec![-1.0, 11.0, -1.0],
            vec![2.0, -1.0, 10.0],
        ]);
        let b = [6.0, 25.0, -11.0];
        let x = gauss_seidel_colored(&a, &b, &[0.0; 3], SolverOptions::new()).unwrap();
        let dense = DenseMatrix::from_csr(&a);
        let expect = dense.solve(&b).unwrap();
        for (u, v) in x.iter().zip(&expect) {
            assert!((u - v).abs() < 1e-9, "{u} vs {v}");
        }
    }

    #[test]
    fn bitwise_identical_across_thread_counts() {
        // Large enough that every class exceeds the parallel chunking
        // threshold, so the worker pool actually runs.
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xC0106);
        let n = 600;
        let mut builder = CooBuilder::new(n, n);
        for r in 0..n {
            builder.push(r, r, 12.0);
            for _ in 0..3 {
                let c = rng.range_usize(n);
                if c != r {
                    builder.push(r, c, rng.range_f64(-1.0, 1.0));
                }
            }
        }
        let a = builder.build().unwrap();
        let b: Vec<f64> = (0..n).map(|_| rng.range_f64(-5.0, 5.0)).collect();
        let serial = gauss_seidel_colored(&a, &b, &vec![0.0; n], with_threads(1)).unwrap();
        for threads in [2, 4, 8] {
            let parallel =
                gauss_seidel_colored(&a, &b, &vec![0.0; n], with_threads(threads)).unwrap();
            for (i, (u, v)) in serial.iter().zip(&parallel).enumerate() {
                assert_eq!(
                    u.to_bits(),
                    v.to_bits(),
                    "threads = {threads}, index {i}: {u} vs {v}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_plain_gauss_seidel_within_tolerance() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xC0107);
        for _ in 0..16 {
            let mut rows = vec![vec![0.0; 6]; 6];
            for row in &mut rows {
                for x in row.iter_mut() {
                    *x = rng.range_f64(-1.0, 1.0);
                }
            }
            for (i, row) in rows.iter_mut().enumerate() {
                row[i] += 8.0;
            }
            let b: Vec<f64> = (0..6).map(|_| rng.range_f64(-5.0, 5.0)).collect();
            let a = matrix(&rows);
            let colored = gauss_seidel_colored(&a, &b, &[0.0; 6], SolverOptions::new()).unwrap();
            let plain =
                super::super::gauss_seidel(&a, &b, &[0.0; 6], SolverOptions::new()).unwrap();
            for (u, v) in colored.iter().zip(&plain) {
                assert!((u - v).abs() < 1e-9, "{u} vs {v}");
            }
        }
    }

    #[test]
    fn zero_diagonal_rejected() {
        let a = matrix(&[vec![0.0, 1.0], vec![1.0, 1.0]]);
        assert_eq!(
            gauss_seidel_colored(&a, &[1.0, 1.0], &[0.0, 0.0], SolverOptions::new()),
            Err(SolveError::ZeroDiagonal { index: 0 })
        );
    }

    #[test]
    fn reports_non_convergence() {
        let a = matrix(&[vec![1.0, 10.0], vec![10.0, 1.0]]);
        let opts = SolverOptions::new().with_max_iterations(50);
        assert!(matches!(
            gauss_seidel_colored(&a, &[1.0, 1.0], &[0.0, 0.0], opts),
            Err(SolveError::NotConverged { .. })
        ));
    }

    #[test]
    fn dimension_checks() {
        let a = matrix(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert!(matches!(
            gauss_seidel_colored(&a, &[1.0], &[0.0, 0.0], SolverOptions::new()),
            Err(SolveError::DimensionMismatch { .. })
        ));
        let rect = matrix(&[vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]]);
        assert!(matches!(
            gauss_seidel_colored(&rect, &[1.0, 1.0], &[0.0, 0.0], SolverOptions::new()),
            Err(SolveError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn reachability_style_system() {
        // (I - P) x = b with substochastic P: the shape used by Eq. 3.8.
        let a = matrix(&[vec![1.0, -2.0 / 3.0], vec![-1.0 / 3.0, 1.0]]);
        let x =
            gauss_seidel_colored(&a, &[0.0, 2.0 / 3.0], &[0.0, 0.0], SolverOptions::new()).unwrap();
        assert!((x[0] - 4.0 / 7.0).abs() < 1e-10);
        assert!((x[1] - 6.0 / 7.0).abs() < 1e-10);
    }
}
