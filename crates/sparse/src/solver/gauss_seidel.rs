//! Gauss–Seidel iteration for `A·x = b`.

use super::SolverOptions;
use crate::error::SolveError;
use crate::CsrMatrix;

/// Solve `A·x = b` by Gauss–Seidel sweeps, starting from `x0`.
///
/// The method converges for the diagonally dominant systems produced by the
/// model checker (`(I - P')·x = b` with `P'` substochastic, and generator
/// systems after the standard rearrangement).
///
/// # Errors
///
/// * [`SolveError::DimensionMismatch`] — `A` not square or `b`/`x0` of the
///   wrong length;
/// * [`SolveError::ZeroDiagonal`] — a row of `A` has no usable diagonal
///   entry;
/// * [`SolveError::NotConverged`] — the iteration cap was reached before the
///   maximum absolute update fell below the tolerance.
///
/// ```
/// use mrmc_sparse::{CooBuilder, solver::{gauss_seidel, SolverOptions}};
///
/// // 4x - y = 7 ; -x + 3y = 3  =>  x = 24/11, y = 19/11
/// let mut b = CooBuilder::new(2, 2);
/// b.push(0, 0, 4.0).push(0, 1, -1.0).push(1, 0, -1.0).push(1, 1, 3.0);
/// let a = b.build().unwrap();
/// let x = gauss_seidel(&a, &[7.0, 3.0], &[0.0, 0.0], SolverOptions::new())?;
/// assert!((x[0] - 24.0 / 11.0).abs() < 1e-10);
/// assert!((x[1] - 19.0 / 11.0).abs() < 1e-10);
/// # Ok::<(), mrmc_sparse::SolveError>(())
/// ```
pub fn gauss_seidel(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    options: SolverOptions,
) -> Result<Vec<f64>, SolveError> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            found: a.ncols(),
        });
    }
    if b.len() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            found: b.len(),
        });
    }
    if x0.len() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            found: x0.len(),
        });
    }

    // Pre-extract diagonals and verify them once.
    let mut diag = vec![0.0; n];
    #[allow(clippy::needless_range_loop)] // r also indexes the matrix rows
    for r in 0..n {
        for (c, v) in a.row(r) {
            if c == r {
                diag[r] = v;
            }
        }
        if diag[r].abs() < 1e-300 {
            return Err(SolveError::ZeroDiagonal { index: r });
        }
    }

    let _span = mrmc_obs::span("solver");
    let mut x = x0.to_vec();
    let mut residual = f64::INFINITY;
    for iteration in 1..=options.max_iterations {
        residual = 0.0;
        for r in 0..n {
            let mut acc = b[r];
            for (c, v) in a.row(r) {
                if c != r {
                    acc -= v * x[c];
                }
            }
            let next = acc / diag[r];
            residual = residual.max((next - x[r]).abs());
            x[r] = next;
        }
        mrmc_obs::record(|| mrmc_obs::Event::SolverSweep {
            iteration: iteration as u64,
            residual,
        });
        if residual <= options.tolerance {
            mrmc_obs::record(|| mrmc_obs::Event::SolverDone {
                iterations: iteration as u64,
                residual,
                converged: true,
            });
            return Ok(x);
        }
        if !residual.is_finite() {
            mrmc_obs::record(|| mrmc_obs::Event::SolverDone {
                iterations: iteration as u64,
                residual,
                converged: false,
            });
            return Err(SolveError::NotConverged {
                iterations: iteration,
                residual,
            });
        }
    }
    mrmc_obs::record(|| mrmc_obs::Event::SolverDone {
        iterations: options.max_iterations as u64,
        residual,
        converged: false,
    });
    Err(SolveError::NotConverged {
        iterations: options.max_iterations,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;
    use crate::{CooBuilder, DenseMatrix};

    fn matrix(rows: &[Vec<f64>]) -> CsrMatrix {
        let mut b = CooBuilder::new(rows.len(), rows[0].len());
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    b.push(i, j, v);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn solves_diagonally_dominant_system() {
        let a = matrix(&[
            vec![10.0, -1.0, 2.0],
            vec![-1.0, 11.0, -1.0],
            vec![2.0, -1.0, 10.0],
        ]);
        let b = [6.0, 25.0, -11.0];
        let x = gauss_seidel(&a, &b, &[0.0; 3], SolverOptions::new()).unwrap();
        let dense = DenseMatrix::from_csr(&a);
        let expect = dense.solve(&b).unwrap();
        for (u, v) in x.iter().zip(&expect) {
            assert!((u - v).abs() < 1e-9, "{u} vs {v}");
        }
    }

    #[test]
    fn zero_diagonal_rejected() {
        let a = matrix(&[vec![0.0, 1.0], vec![1.0, 1.0]]);
        assert_eq!(
            gauss_seidel(&a, &[1.0, 1.0], &[0.0, 0.0], SolverOptions::new()),
            Err(SolveError::ZeroDiagonal { index: 0 })
        );
    }

    #[test]
    fn reports_non_convergence() {
        // Strongly non-dominant system diverges.
        let a = matrix(&[vec![1.0, 10.0], vec![10.0, 1.0]]);
        let opts = SolverOptions::new().with_max_iterations(50);
        assert!(matches!(
            gauss_seidel(&a, &[1.0, 1.0], &[0.0, 0.0], opts),
            Err(SolveError::NotConverged { .. })
        ));
    }

    #[test]
    fn dimension_checks() {
        let a = matrix(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert!(matches!(
            gauss_seidel(&a, &[1.0], &[0.0, 0.0], SolverOptions::new()),
            Err(SolveError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            gauss_seidel(&a, &[1.0, 1.0], &[0.0], SolverOptions::new()),
            Err(SolveError::DimensionMismatch { .. })
        ));
        let rect = matrix(&[vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]]);
        assert!(matches!(
            gauss_seidel(&rect, &[1.0, 1.0], &[0.0, 0.0], SolverOptions::new()),
            Err(SolveError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn reachability_style_system() {
        // (I - P) x = b with substochastic P: the shape used by Eq. 3.8.
        // P = [[0, 2/3], [1/3, 0]] restricted; b = [0, 2/3].
        // Solution: x0 = P(s1, eventually B1) = 4/7 (Example 3.5).
        let a = matrix(&[vec![1.0, -2.0 / 3.0], vec![-1.0 / 3.0, 1.0]]);
        let x = gauss_seidel(&a, &[0.0, 2.0 / 3.0], &[0.0, 0.0], SolverOptions::new()).unwrap();
        assert!((x[0] - 4.0 / 7.0).abs() < 1e-10);
        assert!((x[1] - 6.0 / 7.0).abs() < 1e-10);
    }

    #[test]
    fn agrees_with_direct_solver() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0x65DE1);
        for _ in 0..64 {
            let mut rows = vec![vec![0.0; 4]; 4];
            for row in &mut rows {
                for x in row.iter_mut() {
                    *x = rng.range_f64(-1.0, 1.0);
                }
            }
            for (i, row) in rows.iter_mut().enumerate() {
                row[i] += 6.0; // force dominance
            }
            let b: Vec<f64> = (0..4).map(|_| rng.range_f64(-5.0, 5.0)).collect();
            let a = matrix(&rows);
            let x = gauss_seidel(&a, &b, &[0.0; 4], SolverOptions::new()).unwrap();
            let expect = DenseMatrix::from_rows(&rows).solve(&b).unwrap();
            for (u, v) in x.iter().zip(&expect) {
                assert!((u - v).abs() < 1e-8);
            }
        }
    }
}
