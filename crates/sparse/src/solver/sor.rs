//! Successive over-relaxation (SOR) for `A·x = b`.

use super::SolverOptions;
use crate::error::SolveError;
use crate::CsrMatrix;

/// Solve `A·x = b` by SOR sweeps with relaxation factor `omega`, starting
/// from `x0`.
///
/// `omega = 1` reduces to Gauss–Seidel; `1 < omega < 2` can accelerate
/// convergence on the reachability systems the model checker produces,
/// while `omega < 1` damps oscillatory iterations. The ablation benches use
/// this to study solver choice; the checker itself defaults to plain
/// Gauss–Seidel as the thesis does.
///
/// # Errors
///
/// Same contract as [`super::gauss_seidel`], plus
/// [`SolveError::DimensionMismatch`]-style validation of `omega` reported
/// as a [`SolveError::NotConverged`] guard: `omega` outside `(0, 2)` is
/// rejected immediately (the iteration cannot converge there).
pub fn sor(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    omega: f64,
    options: SolverOptions,
) -> Result<Vec<f64>, SolveError> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            found: a.ncols(),
        });
    }
    if b.len() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            found: b.len(),
        });
    }
    if x0.len() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            found: x0.len(),
        });
    }
    if !(omega.is_finite() && omega > 0.0 && omega < 2.0) {
        return Err(SolveError::NotConverged {
            iterations: 0,
            residual: omega,
        });
    }

    let mut diag = vec![0.0; n];
    #[allow(clippy::needless_range_loop)] // r also indexes the matrix rows
    for r in 0..n {
        for (c, v) in a.row(r) {
            if c == r {
                diag[r] = v;
            }
        }
        if diag[r].abs() < 1e-300 {
            return Err(SolveError::ZeroDiagonal { index: r });
        }
    }

    let mut x = x0.to_vec();
    let mut residual = f64::INFINITY;
    for iteration in 1..=options.max_iterations {
        residual = 0.0;
        for r in 0..n {
            let mut acc = b[r];
            for (c, v) in a.row(r) {
                if c != r {
                    acc -= v * x[c];
                }
            }
            let gs = acc / diag[r];
            let next = x[r] + omega * (gs - x[r]);
            residual = residual.max((next - x[r]).abs());
            x[r] = next;
        }
        if residual <= options.tolerance {
            return Ok(x);
        }
        if !residual.is_finite() {
            return Err(SolveError::NotConverged {
                iterations: iteration,
                residual,
            });
        }
    }
    Err(SolveError::NotConverged {
        iterations: options.max_iterations,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::super::gauss_seidel;
    use super::*;
    use crate::CooBuilder;

    fn matrix(rows: &[Vec<f64>]) -> CsrMatrix {
        let mut b = CooBuilder::new(rows.len(), rows[0].len());
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    b.push(i, j, v);
                }
            }
        }
        b.build().unwrap()
    }

    fn laplacian_system() -> (CsrMatrix, Vec<f64>) {
        // 1-D Poisson with 8 unknowns: the classic SOR showcase.
        let n = 8;
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 2.0);
            if i > 0 {
                b.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.push(i, i + 1, -1.0);
            }
        }
        (b.build().unwrap(), vec![1.0; n])
    }

    #[test]
    fn omega_one_matches_gauss_seidel() {
        let (a, b) = laplacian_system();
        let x_sor = sor(&a, &b, &[0.0; 8], 1.0, SolverOptions::new()).unwrap();
        let x_gs = gauss_seidel(&a, &b, &[0.0; 8], SolverOptions::new()).unwrap();
        for (u, v) in x_sor.iter().zip(&x_gs) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn over_relaxation_converges_faster_on_the_laplacian() {
        let (a, b) = laplacian_system();
        // Find iteration counts by binary search over max_iterations.
        let iterations_needed = |omega: f64| -> usize {
            for iters in 1..10_000 {
                let opts = SolverOptions::new().with_max_iterations(iters);
                if sor(&a, &b, &[0.0; 8], omega, opts).is_ok() {
                    return iters;
                }
            }
            10_000
        };
        let plain = iterations_needed(1.0);
        let relaxed = iterations_needed(1.5);
        assert!(
            relaxed < plain,
            "SOR(1.5) needed {relaxed} ≥ GS {plain} iterations"
        );
    }

    #[test]
    fn solution_is_correct() {
        let (a, b) = laplacian_system();
        let x = sor(&a, &b, &[0.0; 8], 1.4, SolverOptions::new()).unwrap();
        let back = a.mul_vec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn invalid_omega_rejected() {
        let a = matrix(&[vec![1.0]]);
        for bad in [0.0, -1.0, 2.0, 2.5, f64::NAN] {
            assert!(sor(&a, &[1.0], &[0.0], bad, SolverOptions::new()).is_err());
        }
    }

    #[test]
    fn zero_diagonal_rejected() {
        let a = matrix(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert_eq!(
            sor(&a, &[1.0, 1.0], &[0.0, 0.0], 1.0, SolverOptions::new()),
            Err(SolveError::ZeroDiagonal { index: 0 })
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = matrix(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert!(sor(&a, &[1.0], &[0.0, 0.0], 1.0, SolverOptions::new()).is_err());
        assert!(sor(&a, &[1.0, 1.0], &[0.0], 1.0, SolverOptions::new()).is_err());
    }
}
