//! Iterative solvers for the linear systems that model checking produces.
//!
//! Three iteration schemes are provided:
//!
//! * [`gauss_seidel`] — the thesis' default method for the linear systems of
//!   unbounded reachability (Eq. 3.8) and per-BSCC steady state;
//! * [`jacobi`] — a slower but order-independent alternative used for
//!   cross-checking;
//! * [`power_iteration`] — power iteration `x ← x·P` for the stationary vector of an
//!   aperiodic stochastic matrix (the uniformized DTMC is always aperiodic
//!   when `Λ` strictly exceeds the maximal exit rate);
//! * [`sor`] — successive over-relaxation generalizing Gauss–Seidel, used
//!   by the solver-choice ablation.

mod gauss_seidel;
mod jacobi;
mod power;
mod sor;

pub use gauss_seidel::gauss_seidel;
pub use jacobi::jacobi;
pub use power::power_iteration;
pub use sor::sor;

/// Convergence controls shared by the iterative solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverOptions {
    /// Give up after this many sweeps.
    pub max_iterations: usize,
    /// Declare convergence when the maximum absolute update falls below this.
    pub tolerance: f64,
}

impl SolverOptions {
    /// `max_iterations = 100_000`, `tolerance = 1e-12` — tight enough for the
    /// probabilities the checker compares against bounds.
    pub fn new() -> Self {
        SolverOptions {
            max_iterations: 100_000,
            tolerance: 1e-12,
        }
    }

    /// Replace the iteration cap.
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Replace the convergence tolerance.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_builder() {
        let o = SolverOptions::new()
            .with_max_iterations(5)
            .with_tolerance(1e-3);
        assert_eq!(o.max_iterations, 5);
        assert_eq!(o.tolerance, 1e-3);
        assert_eq!(SolverOptions::default(), SolverOptions::new());
    }
}
