//! Iterative solvers for the linear systems that model checking produces.
//!
//! Five iteration schemes are provided:
//!
//! * [`gauss_seidel`] — the thesis' default method for the linear systems of
//!   unbounded reachability (Eq. 3.8) and per-BSCC steady state;
//! * [`gauss_seidel_colored`] — multicolor Gauss–Seidel: rows partitioned
//!   into dependency-free color classes, each class swept by a deterministic
//!   worker pool — bitwise identical across thread counts;
//! * [`jacobi`] — a slower but order-independent alternative used for
//!   cross-checking;
//! * [`power_iteration`] — power iteration `x ← x·P` for the stationary vector of an
//!   aperiodic stochastic matrix (the uniformized DTMC is always aperiodic
//!   when `Λ` strictly exceeds the maximal exit rate);
//! * [`sor`] — successive over-relaxation generalizing Gauss–Seidel, used
//!   by the solver-choice ablation.
//!
//! Callers that should honor a user-selected method go through [`solve`],
//! which dispatches on [`SolverOptions::method`].

mod colored;
mod gauss_seidel;
mod jacobi;
mod power;
mod sor;

pub use colored::gauss_seidel_colored;
pub use gauss_seidel::gauss_seidel;
pub use jacobi::jacobi;
pub use power::power_iteration;
pub use sor::sor;

use crate::error::SolveError;
use crate::CsrMatrix;

/// Which linear-system iteration [`solve`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverMethod {
    /// Plain row-order Gauss–Seidel ([`gauss_seidel`]).
    #[default]
    GaussSeidel,
    /// Multicolor Gauss–Seidel with parallel class sweeps
    /// ([`gauss_seidel_colored`]); honors [`SolverOptions::threads`].
    ColoredGaussSeidel,
}

/// Convergence controls shared by the iterative solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverOptions {
    /// Give up after this many sweeps.
    pub max_iterations: usize,
    /// Declare convergence when the maximum absolute update falls below this.
    pub tolerance: f64,
    /// Iteration scheme used by [`solve`] call sites.
    pub method: SolverMethod,
    /// Worker threads for the colored solver; `0` means the host's
    /// available parallelism. Ignored by the serial methods.
    pub threads: usize,
}

impl SolverOptions {
    /// `max_iterations = 100_000`, `tolerance = 1e-12` — tight enough for the
    /// probabilities the checker compares against bounds — with the plain
    /// Gauss–Seidel method on one thread.
    pub fn new() -> Self {
        SolverOptions {
            max_iterations: 100_000,
            tolerance: 1e-12,
            method: SolverMethod::default(),
            threads: 1,
        }
    }

    /// Replace the iteration cap.
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Replace the convergence tolerance.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Replace the iteration scheme [`solve`] dispatches to.
    pub fn with_method(mut self, method: SolverMethod) -> Self {
        self.method = method;
        self
    }

    /// Replace the worker-thread count for the colored solver
    /// (`0` = available parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions::new()
    }
}

/// Solve `A·x = b` with the iteration scheme selected by
/// [`SolverOptions::method`].
///
/// # Errors
///
/// Propagates the selected solver's failures (dimension mismatch, zero
/// diagonal, non-convergence).
pub fn solve(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    options: SolverOptions,
) -> Result<Vec<f64>, SolveError> {
    match options.method {
        SolverMethod::GaussSeidel => gauss_seidel(a, b, x0, options),
        SolverMethod::ColoredGaussSeidel => gauss_seidel_colored(a, b, x0, options),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooBuilder;

    #[test]
    fn options_builder() {
        let o = SolverOptions::new()
            .with_max_iterations(5)
            .with_tolerance(1e-3)
            .with_method(SolverMethod::ColoredGaussSeidel)
            .with_threads(4);
        assert_eq!(o.max_iterations, 5);
        assert_eq!(o.tolerance, 1e-3);
        assert_eq!(o.method, SolverMethod::ColoredGaussSeidel);
        assert_eq!(o.threads, 4);
        assert_eq!(SolverOptions::default(), SolverOptions::new());
        assert_eq!(SolverOptions::new().method, SolverMethod::GaussSeidel);
        assert_eq!(SolverOptions::new().threads, 1);
    }

    #[test]
    fn solve_dispatches_on_method() {
        // 4x - y = 7 ; -x + 3y = 3  =>  x = 24/11, y = 19/11
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 0, 4.0)
            .push(0, 1, -1.0)
            .push(1, 0, -1.0)
            .push(1, 1, 3.0);
        let a = b.build().unwrap();
        for method in [SolverMethod::GaussSeidel, SolverMethod::ColoredGaussSeidel] {
            let x = solve(
                &a,
                &[7.0, 3.0],
                &[0.0, 0.0],
                SolverOptions::new().with_method(method),
            )
            .unwrap();
            assert!((x[0] - 24.0 / 11.0).abs() < 1e-10, "{method:?}");
            assert!((x[1] - 19.0 / 11.0).abs() < 1e-10, "{method:?}");
        }
    }
}
