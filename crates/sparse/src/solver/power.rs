//! Power iteration for stationary distributions of stochastic matrices.

use super::SolverOptions;
use crate::error::SolveError;
use crate::{vector, CsrMatrix};

/// Compute the stationary distribution `π = π·P` of a stochastic matrix `P`
/// by power iteration from `x0`.
///
/// `x0` is normalized before iterating. The iteration converges whenever `P`
/// is the transition matrix of an irreducible *aperiodic* chain; the
/// uniformized DTMC of a CTMC with `Λ` strictly above the maximal exit rate
/// always has a self-loop and is therefore aperiodic.
///
/// # Errors
///
/// * [`SolveError::DimensionMismatch`] — `P` not square or `x0` of the wrong
///   length;
/// * [`SolveError::Singular`] — `x0` normalizes to the zero vector;
/// * [`SolveError::NotConverged`] — iteration cap reached.
pub fn power_iteration(
    p: &CsrMatrix,
    x0: &[f64],
    options: SolverOptions,
) -> Result<Vec<f64>, SolveError> {
    let n = p.nrows();
    if p.ncols() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            found: p.ncols(),
        });
    }
    if x0.len() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            found: x0.len(),
        });
    }
    let mut x = x0.to_vec();
    if !vector::normalize_l1(&mut x) {
        return Err(SolveError::Singular);
    }

    let _span = mrmc_obs::span("solver");
    let mut residual = f64::INFINITY;
    for iteration in 1..=options.max_iterations {
        let mut next = p.vec_mul(&x);
        // Renormalize to fight drift from floating-point round-off.
        if !vector::normalize_l1(&mut next) {
            return Err(SolveError::Singular);
        }
        residual = vector::max_abs_diff(&x, &next);
        x = next;
        mrmc_obs::record(|| mrmc_obs::Event::SolverSweep {
            iteration: iteration as u64,
            residual,
        });
        if residual <= options.tolerance {
            mrmc_obs::record(|| mrmc_obs::Event::SolverDone {
                iterations: iteration as u64,
                residual,
                converged: true,
            });
            return Ok(x);
        }
    }
    mrmc_obs::record(|| mrmc_obs::Event::SolverDone {
        iterations: options.max_iterations as u64,
        residual,
        converged: false,
    });
    Err(SolveError::NotConverged {
        iterations: options.max_iterations,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooBuilder;

    fn matrix(rows: &[Vec<f64>]) -> CsrMatrix {
        let mut b = CooBuilder::new(rows.len(), rows[0].len());
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    b.push(i, j, v);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn steady_state_of_example_2_3() {
        // Figure 2.1 DTMC: steady state (14/45, 16/45, 1/3).
        let p = matrix(&[
            vec![0.5, 0.5, 0.0],
            vec![0.25, 0.0, 0.75],
            vec![0.2, 0.6, 0.2],
        ]);
        let v = power_iteration(&p, &[1.0, 0.0, 0.0], SolverOptions::new()).unwrap();
        assert!((v[0] - 14.0 / 45.0).abs() < 1e-9);
        assert!((v[1] - 16.0 / 45.0).abs() < 1e-9);
        assert!((v[2] - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn absorbing_chain_concentrates() {
        let p = matrix(&[vec![0.5, 0.5], vec![0.0, 1.0]]);
        let v = power_iteration(&p, &[1.0, 0.0], SolverOptions::new()).unwrap();
        assert!(v[0] < 1e-9);
        assert!((v[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_start_rejected() {
        let p = matrix(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(
            power_iteration(&p, &[0.0, 0.0], SolverOptions::new()),
            Err(SolveError::Singular)
        );
    }

    #[test]
    fn periodic_chain_does_not_converge() {
        // A 2-cycle flips the distribution forever.
        let p = matrix(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let opts = SolverOptions::new().with_max_iterations(100);
        assert!(matches!(
            power_iteration(&p, &[1.0, 0.0], opts),
            Err(SolveError::NotConverged { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_reported() {
        let p = matrix(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert!(matches!(
            power_iteration(&p, &[1.0], SolverOptions::new()),
            Err(SolveError::DimensionMismatch { .. })
        ));
    }
}
