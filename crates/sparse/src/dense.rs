//! Small dense matrices with a direct (Gaussian-elimination) solver.
//!
//! The iterative solvers in [`crate::solver`] handle the large systems; this
//! type exists for small subsystems (e.g. per-BSCC steady-state equations)
//! and as an oracle in tests.

use crate::error::SolveError;
use crate::CsrMatrix;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// An `nrows x ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from nested rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            assert_eq!(r.len(), ncols, "ragged rows");
            data.extend_from_slice(r);
        }
        DenseMatrix { nrows, ncols, data }
    }

    /// Densify a sparse matrix.
    pub fn from_csr(m: &CsrMatrix) -> Self {
        let mut d = DenseMatrix::zeros(m.nrows(), m.ncols());
        for (r, c, v) in m.iter() {
            d[(r, c)] = v;
        }
        d
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Matrix–matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.ncols, rhs.nrows, "mul: dimension mismatch");
        let mut out = DenseMatrix::zeros(self.nrows, rhs.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.ncols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "mul_vec: length mismatch");
        (0..self.nrows)
            .map(|i| (0..self.ncols).map(|j| self[(i, j)] * x[j]).sum())
            .collect()
    }

    /// `self` raised to the `n`-th power by repeated squaring.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn pow(&self, mut n: u32) -> DenseMatrix {
        assert_eq!(self.nrows, self.ncols, "pow: matrix must be square");
        let mut base = self.clone();
        let mut acc = DenseMatrix::identity(self.nrows);
        while n > 0 {
            if n & 1 == 1 {
                acc = acc.mul(&base);
            }
            base = base.mul(&base);
            n >>= 1;
        }
        acc
    }

    /// Solve `self · x = b` by Gaussian elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::Singular`] when a pivot falls below `1e-300`
    /// in absolute value, and [`SolveError::DimensionMismatch`] when
    /// `b.len() != nrows` or the matrix is not square.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        if self.nrows != self.ncols {
            return Err(SolveError::DimensionMismatch {
                expected: self.nrows,
                found: self.ncols,
            });
        }
        if b.len() != self.nrows {
            return Err(SolveError::DimensionMismatch {
                expected: self.nrows,
                found: b.len(),
            });
        }
        let n = self.nrows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            let mut best = a[col * n + col].abs();
            for r in col + 1..n {
                let cand = a[r * n + col].abs();
                if cand > best {
                    best = cand;
                    pivot = r;
                }
            }
            if best < 1e-300 {
                return Err(SolveError::Singular);
            }
            if pivot != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot * n + j);
                }
                x.swap(col, pivot);
            }
            let d = a[col * n + col];
            for r in col + 1..n {
                let f = a[r * n + col] / d;
                if f == 0.0 {
                    continue;
                }
                a[r * n + col] = 0.0;
                for j in col + 1..n {
                    a[r * n + j] -= f * a[col * n + j];
                }
                x[r] -= f * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for j in col + 1..n {
                acc -= a[col * n + j] * x[j];
            }
            x[col] = acc / a[col * n + col];
        }
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.nrows && c < self.ncols, "index out of bounds");
        &self.data[r * self.ncols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.nrows && c < self.ncols, "index out of bounds");
        &mut self.data[r * self.ncols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;
    use crate::CooBuilder;

    #[test]
    fn identity_solves_trivially() {
        let i = DenseMatrix::identity(3);
        let x = i.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_2x2() {
        let a = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero leading entry forces a row swap.
        let a = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[7.0, 9.0]).unwrap();
        assert_eq!(x, vec![9.0, 7.0]);
    }

    #[test]
    fn singular_detected() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(a.solve(&[1.0, 2.0]), Err(SolveError::Singular));
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            a.solve(&[0.0, 0.0]),
            Err(SolveError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn wrong_rhs_len_rejected() {
        let a = DenseMatrix::identity(2);
        assert!(matches!(
            a.solve(&[0.0; 3]),
            Err(SolveError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let p = DenseMatrix::from_rows(&[
            vec![0.5, 0.5, 0.0],
            vec![0.25, 0.0, 0.75],
            vec![0.2, 0.6, 0.2],
        ]);
        let p3 = p.pow(3);
        let p3_manual = p.mul(&p).mul(&p);
        for i in 0..3 {
            for j in 0..3 {
                assert!((p3[(i, j)] - p3_manual[(i, j)]).abs() < 1e-12);
            }
        }
        // p(3) from Example 2.2 of the thesis.
        let row0: Vec<f64> = (0..3).map(|j| p3[(0, j)]).collect();
        assert!((row0[0] - 0.325).abs() < 1e-12);
        assert!((row0[1] - 0.4125).abs() < 1e-12);
        assert!((row0[2] - 0.2625).abs() < 1e-12);
    }

    #[test]
    fn pow_zero_is_identity() {
        let p = DenseMatrix::from_rows(&[vec![0.3, 0.7], vec![0.9, 0.1]]);
        assert_eq!(p.pow(0), DenseMatrix::identity(2));
    }

    #[test]
    fn from_csr_roundtrip() {
        let mut b = CooBuilder::new(2, 3);
        b.push(0, 2, 5.0).push(1, 0, -1.0);
        let m = b.build().unwrap();
        let d = DenseMatrix::from_csr(&m);
        assert_eq!(d[(0, 2)], 5.0);
        assert_eq!(d[(1, 0)], -1.0);
        assert_eq!(d[(0, 0)], 0.0);
    }

    #[test]
    fn solve_then_multiply_recovers_rhs() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(0xDE45E);
        for _ in 0..64 {
            let mut a = DenseMatrix::zeros(3, 3);
            for i in 0..3 {
                for j in 0..3 {
                    a[(i, j)] = rng.range_f64(-4.0, 4.0);
                }
                // Make diagonally dominant so the system is well conditioned.
                a[(i, i)] += 20.0;
            }
            let b: Vec<f64> = (0..3).map(|_| rng.range_f64(-10.0, 10.0)).collect();
            let x = a.solve(&b).unwrap();
            let back = a.mul_vec(&x);
            for (u, v) in back.iter().zip(&b) {
                assert!((u - v).abs() < 1e-8);
            }
        }
    }
}
