//! A small, deterministic, in-tree pseudo-random generator.
//!
//! The workspace must build and test with **no network access**, so the
//! external `rand` crate is out of reach. This module provides the two
//! standard generators the rest of the workspace uses instead:
//!
//! * [`SplitMix64`] — the 64-bit finalizer-based generator of Steele,
//!   Lea & Flood, used here exclusively to expand a user seed into the
//!   256-bit state of the main generator (its intended role);
//! * [`Xoshiro256StarStar`] — Blackman & Vigna's `xoshiro256**`, the
//!   general-purpose generator behind every randomized test, the random
//!   model generator, and the Monte-Carlo engine.
//!
//! Both are tiny, well-studied, and fully deterministic per seed, which is
//! what the hermetic test-suite needs: every "random" test in this
//! workspace is reproducible from its literal seed.

/// SplitMix64: a 64-bit generator with a single `u64` of state.
///
/// Primarily used to seed [`Xoshiro256StarStar`]; usable on its own for
/// throwaway streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workspace's general-purpose deterministic generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Create a generator, expanding `seed` through [`SplitMix64`] as the
    /// xoshiro authors recommend (avoids the all-zero state for every
    /// seed, including 0).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits, the standard
    /// bit-shift construction).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi` or either bound is non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        lo + self.next_f64() * (hi - lo)
    }

    /// A uniform `usize` in `[0, n)` via Lemire-style rejection-free
    /// widening multiply (tiny bias is irrelevant at test scales, and the
    /// method is branch-free and deterministic).
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn range_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// A biased coin: `true` with probability `p` (clamped into `[0, 1]`).
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference stream for seed 1234567 from the public-domain
        // splitmix64.c test vector.
        let mut sm = SplitMix64::new(1234567);
        let expect: [u64; 5] = [
            6457827717110365317,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for e in expect {
            assert_eq!(sm.next_u64(), e);
        }
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = Xoshiro256StarStar::seed_from_u64(42);
        let mut b = Xoshiro256StarStar::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256StarStar::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Xoshiro256StarStar::seed_from_u64(0);
        // The state expansion must not yield the forbidden all-zero state.
        assert!((0..10).any(|_| r.next_u64() != 0));
    }

    #[test]
    fn f64_stays_in_unit_interval_and_looks_uniform() {
        let mut r = Xoshiro256StarStar::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Xoshiro256StarStar::seed_from_u64(11);
        for _ in 0..1_000 {
            let x = r.range_f64(2.0, 3.5);
            assert!((2.0..3.5).contains(&x));
            let k = r.range_usize(7);
            assert!(k < 7);
        }
        // Every bucket of a small range is hit.
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[r.range_usize(5)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn bool_with_matches_probability() {
        let mut r = Xoshiro256StarStar::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.bool_with(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
        assert!(!r.bool_with(0.0));
        assert!(r.bool_with(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_usize_range_panics() {
        Xoshiro256StarStar::seed_from_u64(0).range_usize(0);
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn inverted_f64_range_panics() {
        Xoshiro256StarStar::seed_from_u64(0).range_f64(1.0, 1.0);
    }
}
