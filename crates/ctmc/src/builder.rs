//! Convenience builder for labeled CTMCs.

use mrmc_sparse::CooBuilder;

use crate::ctmc::Ctmc;
use crate::error::ModelError;
use crate::label::Labeling;

/// Incremental builder for a [`Ctmc`].
///
/// Transitions pushed for the same `(from, to)` pair accumulate, matching the
/// usual convention for parallel transitions in high-level model
/// descriptions.
///
/// ```
/// use mrmc_ctmc::CtmcBuilder;
///
/// let mut b = CtmcBuilder::new(2);
/// b.transition(0, 1, 1.0).transition(1, 0, 2.0).label(0, "start");
/// let ctmc = b.build()?;
/// assert_eq!(ctmc.num_states(), 2);
/// assert!(ctmc.labeling().has(0, "start"));
/// # Ok::<(), mrmc_ctmc::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CtmcBuilder {
    num_states: usize,
    rates: CooBuilder,
    labeling: Labeling,
}

impl CtmcBuilder {
    /// Start a builder for a chain with `num_states` states.
    pub fn new(num_states: usize) -> Self {
        CtmcBuilder {
            num_states,
            rates: CooBuilder::new(num_states, num_states),
            labeling: Labeling::new(num_states),
        }
    }

    /// Number of states the chain will have.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Add (accumulate) a transition `from → to` with the given `rate`.
    ///
    /// Validation (non-negativity, bounds) happens in
    /// [`build`](CtmcBuilder::build).
    pub fn transition(&mut self, from: usize, to: usize, rate: f64) -> &mut Self {
        self.rates.push(from, to, rate);
        self
    }

    /// Attach atomic proposition `ap` to `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn label(&mut self, state: usize, ap: impl Into<String>) -> &mut Self {
        self.labeling.add(state, ap);
        self
    }

    /// Finish and validate the chain.
    ///
    /// # Errors
    ///
    /// Everything [`Ctmc::new`] rejects, plus
    /// [`ModelError::StateOutOfBounds`] for transitions past the declared
    /// state count.
    pub fn build(self) -> Result<Ctmc, ModelError> {
        let rates = self.rates.build().map_err(|e| match e {
            mrmc_sparse::BuildError::IndexOutOfBounds { row, nrows, .. } => {
                ModelError::StateOutOfBounds {
                    state: row,
                    states: nrows,
                }
            }
            mrmc_sparse::BuildError::NonFiniteValue { row, col } => ModelError::NegativeEntry {
                from: row,
                to: col,
                value: f64::NAN,
            },
        })?;
        Ctmc::new(rates, self.labeling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_parallel_transitions() {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0).transition(0, 1, 2.5);
        let c = b.build().unwrap();
        assert_eq!(c.rates().get(0, 1), 3.5);
    }

    #[test]
    fn out_of_bounds_transition_rejected() {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 5, 1.0);
        assert!(matches!(
            b.build(),
            Err(ModelError::StateOutOfBounds { .. })
        ));
    }

    #[test]
    fn negative_rate_rejected() {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, -1.0);
        assert!(matches!(b.build(), Err(ModelError::NegativeEntry { .. })));
    }

    #[test]
    fn nan_rate_rejected() {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, f64::NAN);
        assert!(matches!(b.build(), Err(ModelError::NegativeEntry { .. })));
    }

    #[test]
    fn labels_carry_through() {
        let mut b = CtmcBuilder::new(1);
        b.label(0, "a").label(0, "b");
        let c = b.build().unwrap();
        assert!(c.labeling().has(0, "a"));
        assert!(c.labeling().has(0, "b"));
    }

    #[test]
    fn empty_builder_rejected() {
        assert!(matches!(
            CtmcBuilder::new(0).build(),
            Err(ModelError::EmptyModel)
        ));
    }
}
