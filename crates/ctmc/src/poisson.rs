//! Poisson probabilities for uniformization.
//!
//! Three evaluation layers, matching the needs of the algorithms in the
//! thesis:
//!
//! * [`pmf`]/[`cdf`]/[`upper_tail`] — direct, log-space-stable point
//!   evaluations used for error bounds (Eq. 4.6);
//! * [`Weights`] — the incremental recursion `P_0 = e^{-Λt}`,
//!   `P_i = (Λt/i)·P_{i-1}` used by depth-first path generation
//!   (Algorithm 4.7);
//! * [`FoxGlynn`] — the Fox–Glynn style weighting used for transient state
//!   probabilities and the state-reward-only baseline, stable for large
//!   `Λt`.

/// Natural log of the gamma function by the Lanczos approximation (g = 7,
/// n = 9), accurate to ~1e-13 for positive arguments.
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision)]
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + G + 0.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// The Poisson probability `e^{-λt}·(λt)^n / n!`, evaluated in log space.
///
/// `lambda_t` must be non-negative and finite; `lambda_t == 0` gives the
/// degenerate distribution at `n = 0`.
///
/// # Panics
///
/// Panics if `lambda_t` is negative or non-finite.
pub fn pmf(lambda_t: f64, n: u64) -> f64 {
    assert!(
        lambda_t.is_finite() && lambda_t >= 0.0,
        "lambda_t must be finite and non-negative"
    );
    if lambda_t == 0.0 {
        return if n == 0 { 1.0 } else { 0.0 };
    }
    let ln_p = n as f64 * lambda_t.ln() - lambda_t - ln_gamma(n as f64 + 1.0);
    ln_p.exp()
}

/// `Pr{N ≤ n}` for `N ~ Poisson(λt)`.
///
/// The ratio recursion is anchored at `min(n, mode)` where the log-space
/// pmf is representable, so the result stays accurate for large `λt`
/// (anchoring at `pmf(λt, 0)` would underflow to an all-zero sum).
pub fn cdf(lambda_t: f64, n: u64) -> f64 {
    if lambda_t == 0.0 {
        return 1.0;
    }
    let anchor = (lambda_t.floor() as u64).min(n);
    let mut acc = 0.0;

    // Walk down from the anchor: pmf(i−1) = pmf(i) · i/λt.
    let mut term = pmf(lambda_t, anchor);
    let mut i = anchor;
    loop {
        acc += term;
        if i == 0 || term < acc * 1e-18 + 1e-320 {
            break;
        }
        term *= i as f64 / lambda_t;
        i -= 1;
    }

    // Walk up from the anchor to n: pmf(j) = pmf(j−1) · λt/j.
    let mut term = pmf(lambda_t, anchor);
    for j in anchor + 1..=n {
        term *= lambda_t / j as f64;
        acc += term;
        if term < acc * 1e-18 + 1e-320 {
            break;
        }
    }
    acc.min(1.0)
}

/// `Pr{N ≥ n}`, the truncation error of stopping a uniformization sum after
/// `n - 1` terms; `1` for `n = 0`.
///
/// Evaluated by summing the smaller side of the distribution, so it stays
/// accurate when the tail is tiny.
pub fn upper_tail(lambda_t: f64, n: u64) -> f64 {
    if n == 0 {
        return 1.0;
    }
    if (n as f64) <= lambda_t {
        return (1.0 - cdf(lambda_t, n - 1)).max(0.0);
    }
    // Sum the right tail directly.
    let mut term = pmf(lambda_t, n);
    let mut acc = 0.0;
    let mut i = n;
    loop {
        acc += term;
        i += 1;
        term *= lambda_t / i as f64;
        if term < acc * 1e-18 + 1e-320 {
            break;
        }
    }
    acc.min(1.0)
}

/// Incremental Poisson weights: `next()` yields `pmf(λt, 0)`, `pmf(λt, 1)`,
/// … using the recursion of Section 4.6.2.
///
/// ```
/// let mut w = mrmc_ctmc::poisson::Weights::new(2.0);
/// let p0 = w.next().unwrap();
/// assert!((p0 - (-2.0f64).exp()).abs() < 1e-15);
/// ```
#[derive(Debug, Clone)]
pub struct Weights {
    lambda_t: f64,
    next_n: u64,
    current: f64,
}

impl Weights {
    /// Weights for a Poisson process observed for `lambda_t = Λ·t`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda_t` is negative or non-finite.
    pub fn new(lambda_t: f64) -> Self {
        assert!(
            lambda_t.is_finite() && lambda_t >= 0.0,
            "lambda_t must be finite and non-negative"
        );
        Weights {
            lambda_t,
            next_n: 0,
            current: (-lambda_t).exp(),
        }
    }
}

impl Iterator for Weights {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        let out = self.current;
        self.next_n += 1;
        self.current *= self.lambda_t / self.next_n as f64;
        Some(out)
    }
}

/// Fox–Glynn style truncated Poisson weights.
///
/// Computes a window `[left, right]` whose total probability mass is at least
/// `1 - epsilon`, with weights evaluated by the ratio recursion from the mode
/// (numerically stable for large `Λt` where `e^{-Λt}` underflows).
#[derive(Debug, Clone)]
pub struct FoxGlynn {
    left: u64,
    weights: Vec<f64>,
}

impl FoxGlynn {
    /// Compute the window and normalized weights for `lambda_t` with total
    /// truncation error at most `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda_t` is negative/non-finite or `epsilon` is not in
    /// `(0, 1)`.
    pub fn new(lambda_t: f64, epsilon: f64) -> Self {
        assert!(
            lambda_t.is_finite() && lambda_t >= 0.0,
            "lambda_t must be finite and non-negative"
        );
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        if lambda_t == 0.0 {
            return FoxGlynn {
                left: 0,
                weights: vec![1.0],
            };
        }

        let mode = lambda_t.floor() as u64;
        // Unnormalized weights from the mode outward; the scale constant
        // cancels during normalization.
        const SCALE: f64 = 1e250;
        let mut down: Vec<f64> = Vec::new();
        let mut up: Vec<f64> = Vec::new();

        // Downward: w_{i-1} = (i / λt) · w_i.
        let mut w = SCALE;
        let mut i = mode;
        while i > 0 {
            w *= i as f64 / lambda_t;
            if w < SCALE * 1e-30 {
                break;
            }
            down.push(w);
            i -= 1;
        }
        let left = i + u64::from(i > 0);

        // Upward: w_{i+1} = (λt / (i+1)) · w_i.
        w = SCALE;
        let mut j = mode;
        loop {
            let next = w * lambda_t / (j + 1) as f64;
            if next < SCALE * 1e-30 {
                break;
            }
            up.push(next);
            w = next;
            j += 1;
        }

        let mut weights = Vec::with_capacity(down.len() + 1 + up.len());
        weights.extend(down.iter().rev());
        weights.push(SCALE);
        weights.extend(up.iter());

        // Normalize, then trim the tails down to epsilon/2 on each side.
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        let mut lo = 0usize;
        let mut acc = 0.0;
        while lo < weights.len() && acc + weights[lo] < epsilon / 2.0 {
            acc += weights[lo];
            lo += 1;
        }
        let mut hi = weights.len();
        acc = 0.0;
        while hi > lo + 1 && acc + weights[hi - 1] < epsilon / 2.0 {
            acc += weights[hi - 1];
            hi -= 1;
        }
        let fg = FoxGlynn {
            left: left + lo as u64,
            weights: weights[lo..hi].to_vec(),
        };
        mrmc_obs::record(|| mrmc_obs::Event::PoissonWindow {
            lambda_t,
            left: fg.left(),
            right: fg.right(),
            tail_bound: epsilon,
        });
        fg
    }

    /// First index of the window.
    pub fn left(&self) -> u64 {
        self.left
    }

    /// Last index of the window (inclusive).
    pub fn right(&self) -> u64 {
        self.left + self.weights.len() as u64 - 1
    }

    /// The normalized weight of index `left() + k`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Iterate `(n, weight)` pairs over the window.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.weights
            .iter()
            .enumerate()
            .map(move |(k, &w)| (self.left + k as u64, w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..15u64 {
            let fact: f64 = (1..=n).map(|k| k as f64).product();
            assert!(
                (ln_gamma(n as f64 + 1.0) - fact.ln()).abs() < 1e-10,
                "n = {n}"
            );
        }
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn pmf_basics() {
        assert_eq!(pmf(0.0, 0), 1.0);
        assert_eq!(pmf(0.0, 3), 0.0);
        assert!((pmf(2.0, 0) - (-2.0f64).exp()).abs() < 1e-15);
        assert!((pmf(2.0, 1) - 2.0 * (-2.0f64).exp()).abs() < 1e-14);
        // Large λt does not underflow near the mode.
        assert!(pmf(5000.0, 5000) > 0.0);
    }

    #[test]
    fn pmf_sums_to_one() {
        let total: f64 = (0..200).map(|n| pmf(20.0, n)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weights_match_pmf() {
        let lt = 7.3;
        let ws: Vec<f64> = Weights::new(lt).take(40).collect();
        for (n, w) in ws.iter().enumerate() {
            assert!((w - pmf(lt, n as u64)).abs() < 1e-12 * (1.0 + w), "n = {n}");
        }
    }

    #[test]
    fn cdf_and_upper_tail_are_complementary() {
        let lt = 4.2;
        for n in 1..30u64 {
            let s = cdf(lt, n - 1) + upper_tail(lt, n);
            assert!((s - 1.0).abs() < 1e-12, "n = {n}: {s}");
        }
        assert_eq!(upper_tail(lt, 0), 1.0);
    }

    #[test]
    fn cdf_is_stable_for_large_lambda_t() {
        // λt = 1020: e^{−λt} underflows, but the CDF near the mode must
        // still be ≈ 0.5 (previously an all-zero sum).
        let lt = 1020.0;
        let at_mode = cdf(lt, 1020);
        assert!((at_mode - 0.5).abs() < 0.05, "cdf at mode = {at_mode}");
        assert!(cdf(lt, 900) < 1e-4);
        assert!(cdf(lt, 1150) > 0.9999);
        // Tail/CDF complementarity holds across the mode.
        for n in [950u64, 1000, 1020, 1050, 1100] {
            let s = cdf(lt, n - 1) + upper_tail(lt, n);
            assert!((s - 1.0).abs() < 1e-9, "n = {n}: {s}");
        }
    }

    #[test]
    fn upper_tail_is_accurate_in_far_tail() {
        // Pr{N >= 40} with λt = 2 is tiny; log-space evaluation keeps
        // relative accuracy where 1 - cdf would return 0.
        let t = upper_tail(2.0, 40);
        assert!(t > 0.0);
        assert!(t < 1e-30);
        let direct: f64 = (40..80).map(|n| pmf(2.0, n)).sum();
        assert!((t - direct).abs() <= 1e-12 * direct.max(1e-300));
    }

    #[test]
    fn fox_glynn_weights_sum_to_one() {
        for &lt in &[0.5, 5.0, 50.0, 500.0, 5000.0] {
            let fg = FoxGlynn::new(lt, 1e-10);
            let total: f64 = fg.weights().iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "λt = {lt}: total {total}");
            assert!(fg.left() <= lt as u64 + 1);
            assert!(fg.right() as f64 >= lt);
        }
    }

    #[test]
    fn fox_glynn_matches_pmf_in_window() {
        let lt = 30.0;
        let fg = FoxGlynn::new(lt, 1e-12);
        for (n, w) in fg.iter() {
            let p = pmf(lt, n);
            assert!((w - p).abs() < 1e-9 * (1.0 + p), "n = {n}: {w} vs {p}");
        }
    }

    #[test]
    fn fox_glynn_zero_lambda() {
        let fg = FoxGlynn::new(0.0, 1e-9);
        assert_eq!(fg.left(), 0);
        assert_eq!(fg.weights(), &[1.0]);
    }

    #[test]
    fn fox_glynn_window_covers_requested_mass() {
        let lt = 100.0;
        let fg = FoxGlynn::new(lt, 1e-8);
        let mass: f64 = fg.iter().map(|(n, _)| pmf(lt, n)).sum();
        assert!(mass > 1.0 - 1e-7);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_lambda_panics() {
        pmf(-1.0, 0);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn bad_epsilon_panics() {
        FoxGlynn::new(1.0, 0.0);
    }
}
