//! Transient analysis of CTMCs by uniformization (Section 2.4.1).
//!
//! `p(t) = Σ_n e^{-Λt}(Λt)^n/n! · p(0)·P^n` over the uniformized DTMC, with
//! the Poisson layer truncated by Fox–Glynn weights.

use crate::error::ModelError;
use crate::poisson::FoxGlynn;
use crate::Ctmc;

/// State-occupation probabilities `p(t)` starting from `initial`, with total
/// truncation error at most `epsilon` (in the L1 sense).
///
/// # Errors
///
/// [`ModelError::LabelingSizeMismatch`] when `initial` has the wrong length;
/// uniformization failures are propagated.
///
/// # Panics
///
/// Panics if `t` is negative/non-finite or `epsilon` is not in `(0, 1)`.
pub fn transient_distribution(
    ctmc: &Ctmc,
    initial: &[f64],
    t: f64,
    epsilon: f64,
) -> Result<Vec<f64>, ModelError> {
    assert!(
        t.is_finite() && t >= 0.0,
        "t must be finite and non-negative"
    );
    let n = ctmc.num_states();
    if initial.len() != n {
        return Err(ModelError::LabelingSizeMismatch {
            states: n,
            labeled: initial.len(),
        });
    }
    if t == 0.0 {
        return Ok(initial.to_vec());
    }

    let (uni, lambda) = ctmc.uniformized(None)?;
    let fg = FoxGlynn::new(lambda * t, epsilon);
    let p = uni.probabilities();

    let mut v = initial.to_vec();
    let mut acc = vec![0.0; n];
    for step in 0..=fg.right() {
        if step >= fg.left() {
            let w = fg.weights()[(step - fg.left()) as usize];
            for (a, x) in acc.iter_mut().zip(&v) {
                *a += w * x;
            }
        }
        if step < fg.right() {
            v = p.vec_mul(&v);
        }
    }
    Ok(acc)
}

/// Probability of occupying a `target` state at time `t` from `initial`.
///
/// # Errors
///
/// See [`transient_distribution`]; additionally rejects a `target` vector of
/// the wrong length.
pub fn transient_probability(
    ctmc: &Ctmc,
    initial: &[f64],
    t: f64,
    target: &[bool],
    epsilon: f64,
) -> Result<f64, ModelError> {
    if target.len() != ctmc.num_states() {
        return Err(ModelError::LabelingSizeMismatch {
            states: ctmc.num_states(),
            labeled: target.len(),
        });
    }
    let d = transient_distribution(ctmc, initial, t, epsilon)?;
    Ok(d.iter()
        .zip(target)
        .filter(|(_, &in_target)| in_target)
        .map(|(p, _)| p)
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;
    use mrmc_sparse::vector;

    fn two_state(fail: f64, repair: f64) -> Ctmc {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, fail).transition(1, 0, repair);
        b.label(0, "up").label(1, "down");
        b.build().unwrap()
    }

    #[test]
    fn matches_closed_form_for_two_states() {
        // p_down(t) = λ/(λ+μ) · (1 − e^{−(λ+μ)t}).
        let (lambda, mu) = (0.2, 0.8);
        let c = two_state(lambda, mu);
        for &t in &[0.1, 1.0, 5.0, 20.0] {
            let p = transient_distribution(&c, &[1.0, 0.0], t, 1e-12).unwrap();
            let expect = lambda / (lambda + mu) * (1.0 - (-(lambda + mu) * t).exp());
            assert!(
                (p[1] - expect).abs() < 1e-9,
                "t = {t}: {} vs {expect}",
                p[1]
            );
        }
    }

    #[test]
    fn t_zero_returns_initial() {
        let c = two_state(1.0, 1.0);
        let p = transient_distribution(&c, &[0.3, 0.7], 0.0, 1e-10).unwrap();
        assert_eq!(p, vec![0.3, 0.7]);
    }

    #[test]
    fn distribution_stays_normalized() {
        let c = two_state(2.0, 0.5);
        for &t in &[0.5, 3.0, 50.0] {
            let p = transient_distribution(&c, &[1.0, 0.0], t, 1e-12).unwrap();
            assert!((vector::sum(&p) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn converges_to_steady_state() {
        let c = two_state(1.0, 3.0);
        let p = transient_distribution(&c, &[0.0, 1.0], 200.0, 1e-12).unwrap();
        assert!((p[0] - 0.75).abs() < 1e-8);
        assert!((p[1] - 0.25).abs() < 1e-8);
    }

    #[test]
    fn absorbing_state_accumulates() {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0);
        let c = b.build().unwrap();
        let p = transient_probability(&c, &[1.0, 0.0], 2.0, &[false, true], 1e-12).unwrap();
        assert!((p - (1.0 - (-2.0f64).exp())).abs() < 1e-9);
    }

    #[test]
    fn large_lambda_t_is_stable() {
        // Λt ≈ 2000: Fox–Glynn must not underflow.
        let c = two_state(100.0, 300.0);
        let p = transient_distribution(&c, &[1.0, 0.0], 5.0, 1e-10).unwrap();
        assert!((p[0] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn wrong_initial_length_rejected() {
        let c = two_state(1.0, 1.0);
        assert!(matches!(
            transient_distribution(&c, &[1.0], 1.0, 1e-10),
            Err(ModelError::LabelingSizeMismatch { .. })
        ));
        assert!(matches!(
            transient_probability(&c, &[1.0, 0.0], 1.0, &[true], 1e-10),
            Err(ModelError::LabelingSizeMismatch { .. })
        ));
    }
}
