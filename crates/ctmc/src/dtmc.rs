//! Discrete-time Markov chains (Section 2.3).

use mrmc_sparse::solver::{power_iteration, SolverOptions};
use mrmc_sparse::CsrMatrix;

use crate::error::ModelError;
use crate::label::Labeling;

/// A labeled DTMC described by its one-step probability matrix `P` and a
/// labeling.
///
/// Every row must sum to one (within `1e-9`); build absorbing behaviour with
/// explicit self-loops.
#[derive(Debug, Clone, PartialEq)]
pub struct Dtmc {
    probs: CsrMatrix,
    labeling: Labeling,
}

impl Dtmc {
    /// Validate and wrap a probability matrix.
    ///
    /// # Errors
    ///
    /// * [`ModelError::EmptyModel`], [`ModelError::NonSquareMatrix`],
    ///   [`ModelError::LabelingSizeMismatch`] — structural problems;
    /// * [`ModelError::NegativeEntry`] — a negative probability;
    /// * [`ModelError::NotStochastic`] — a row sum differing from one by more
    ///   than `1e-9`.
    pub fn new(probs: CsrMatrix, labeling: Labeling) -> Result<Self, ModelError> {
        if probs.nrows() == 0 {
            return Err(ModelError::EmptyModel);
        }
        if probs.nrows() != probs.ncols() {
            return Err(ModelError::NonSquareMatrix {
                nrows: probs.nrows(),
                ncols: probs.ncols(),
            });
        }
        if labeling.num_states() != probs.nrows() {
            return Err(ModelError::LabelingSizeMismatch {
                states: probs.nrows(),
                labeled: labeling.num_states(),
            });
        }
        for (r, c, v) in probs.iter() {
            if v < 0.0 {
                return Err(ModelError::NegativeEntry {
                    from: r,
                    to: c,
                    value: v,
                });
            }
        }
        for (row, sum) in probs.row_sums().into_iter().enumerate() {
            if (sum - 1.0).abs() > 1e-9 {
                return Err(ModelError::NotStochastic { row, sum });
            }
        }
        Ok(Dtmc { probs, labeling })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.probs.nrows()
    }

    /// The one-step probability matrix `P`.
    pub fn probabilities(&self) -> &CsrMatrix {
        &self.probs
    }

    /// The labeling function.
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// One step of distribution propagation: `p' = p·P`.
    ///
    /// # Panics
    ///
    /// Panics if `p.len()` differs from the number of states.
    pub fn step(&self, p: &[f64]) -> Vec<f64> {
        self.probs.vec_mul(p)
    }

    /// The state-occupation probabilities after `steps` steps:
    /// `p(n) = p(0)·P^n` (Section 2.3.1).
    pub fn transient(&self, initial: &[f64], steps: usize) -> Vec<f64> {
        let mut p = initial.to_vec();
        for _ in 0..steps {
            p = self.step(&p);
        }
        p
    }

    /// The steady-state distribution `v = v·P` by power iteration
    /// (Section 2.3.2).
    ///
    /// The result depends on `initial` when the chain is reducible; pass the
    /// actual initial distribution in that case.
    ///
    /// # Errors
    ///
    /// Propagates solver failures, in particular
    /// [`mrmc_sparse::SolveError::NotConverged`] for periodic chains where
    /// the limit does not exist.
    pub fn steady_state(
        &self,
        initial: &[f64],
        options: SolverOptions,
    ) -> Result<Vec<f64>, ModelError> {
        Ok(power_iteration(&self.probs, initial, options)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrmc_sparse::CooBuilder;

    fn figure_2_1() -> Dtmc {
        let mut b = CooBuilder::new(3, 3);
        b.push(0, 0, 0.5).push(0, 1, 0.5);
        b.push(1, 0, 0.25).push(1, 2, 0.75);
        b.push(2, 0, 0.2).push(2, 1, 0.6).push(2, 2, 0.2);
        Dtmc::new(b.build().unwrap(), Labeling::new(3)).unwrap()
    }

    #[test]
    fn transient_of_example_2_2() {
        let d = figure_2_1();
        let p3 = d.transient(&[1.0, 0.0, 0.0], 3);
        assert!((p3[0] - 0.325).abs() < 1e-12);
        assert!((p3[1] - 0.4125).abs() < 1e-12);
        assert!((p3[2] - 0.2625).abs() < 1e-12);

        let p25 = d.transient(&[1.0, 0.0, 0.0], 25);
        assert!((p25[0] - 0.31111).abs() < 5e-6);
        assert!((p25[1] - 0.35556).abs() < 5e-6);
        assert!((p25[2] - 0.33333).abs() < 5e-6);
    }

    #[test]
    fn steady_state_of_example_2_3() {
        let d = figure_2_1();
        let v = d
            .steady_state(&[1.0, 0.0, 0.0], SolverOptions::new())
            .unwrap();
        assert!((v[0] - 14.0 / 45.0).abs() < 1e-9);
        assert!((v[1] - 16.0 / 45.0).abs() < 1e-9);
        assert!((v[2] - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_steps_is_identity() {
        let d = figure_2_1();
        assert_eq!(d.transient(&[0.0, 1.0, 0.0], 0), vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn substochastic_row_rejected() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 0, 0.5).push(1, 1, 1.0);
        assert!(matches!(
            Dtmc::new(b.build().unwrap(), Labeling::new(2)),
            Err(ModelError::NotStochastic { row: 0, .. })
        ));
    }

    #[test]
    fn negative_probability_rejected() {
        let mut b = CooBuilder::new(1, 1);
        b.push(0, 0, -1.0);
        assert!(matches!(
            Dtmc::new(b.build().unwrap(), Labeling::new(1)),
            Err(ModelError::NegativeEntry { .. })
        ));
    }

    #[test]
    fn structural_errors() {
        assert!(matches!(
            Dtmc::new(CsrMatrix::zeros(0, 0), Labeling::new(0)),
            Err(ModelError::EmptyModel)
        ));
        assert!(matches!(
            Dtmc::new(CsrMatrix::identity(2), Labeling::new(5)),
            Err(ModelError::LabelingSizeMismatch { .. })
        ));
    }
}
