//! Atomic propositions and state labelings (Section 2.5 of the thesis).

use std::collections::BTreeSet;

/// A labeling function `Label : S → 2^AP` assigning to every state the set of
/// atomic propositions valid in it.
///
/// Atomic propositions are plain strings; a state `s` with `p ∈ Label(s)` is
/// called a *p-state*.
///
/// ```
/// let mut l = mrmc_ctmc::Labeling::new(3);
/// l.add(0, "idle");
/// l.add(2, "busy");
/// assert!(l.has(0, "idle"));
/// assert_eq!(l.states_with("busy"), vec![false, false, true]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Labeling {
    per_state: Vec<BTreeSet<String>>,
    declared: BTreeSet<String>,
}

impl Labeling {
    /// An empty labeling over `num_states` states.
    pub fn new(num_states: usize) -> Self {
        Labeling {
            per_state: vec![BTreeSet::new(); num_states],
            declared: BTreeSet::new(),
        }
    }

    /// Number of states covered.
    pub fn num_states(&self) -> usize {
        self.per_state.len()
    }

    /// Declare `ap` as part of the vocabulary without assigning it to a
    /// state. Assigning a proposition with [`add`](Labeling::add) declares
    /// it implicitly, so this is only needed for propositions that may end
    /// up unused (the `.lab` file's `#DECLARATION` block); the lint pass
    /// reports declared-but-unused propositions.
    pub fn declare(&mut self, ap: impl Into<String>) -> &mut Self {
        self.declared.insert(ap.into());
        self
    }

    /// Every declared proposition (explicitly via
    /// [`declare`](Labeling::declare) or implicitly via
    /// [`add`](Labeling::add)), sorted and de-duplicated.
    pub fn declared(&self) -> Vec<&str> {
        self.declared.iter().map(String::as_str).collect()
    }

    /// Make `ap` valid in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn add(&mut self, state: usize, ap: impl Into<String>) -> &mut Self {
        let ap = ap.into();
        self.declared.insert(ap.clone());
        self.per_state[state].insert(ap);
        self
    }

    /// `true` when `ap ∈ Label(state)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn has(&self, state: usize, ap: &str) -> bool {
        self.per_state[state].contains(ap)
    }

    /// The set of propositions valid in `state`, in lexicographic order.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn of_state(&self, state: usize) -> impl Iterator<Item = &str> {
        self.per_state[state].iter().map(String::as_str)
    }

    /// The characteristic vector of the set of `ap`-states.
    pub fn states_with(&self, ap: &str) -> Vec<bool> {
        self.per_state.iter().map(|s| s.contains(ap)).collect()
    }

    /// The propositions valid in *every* one of `states`, in lexicographic
    /// order — the labels a lumping quotient can safely keep on a block.
    /// Empty for an empty state set.
    ///
    /// # Panics
    ///
    /// Panics if any state is out of bounds.
    pub fn common_to(&self, states: &[usize]) -> Vec<&str> {
        let Some((&first, rest)) = states.split_first() else {
            return Vec::new();
        };
        self.per_state[first]
            .iter()
            .filter(|ap| rest.iter().all(|&s| self.per_state[s].contains(*ap)))
            .map(String::as_str)
            .collect()
    }

    /// Every proposition used anywhere in the labeling, sorted and
    /// de-duplicated.
    pub fn all_propositions(&self) -> Vec<&str> {
        let mut set = BTreeSet::new();
        for s in &self.per_state {
            for ap in s {
                set.insert(ap.as_str());
            }
        }
        set.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelan_labeling_of_example_2_4() {
        // States 1..5 of Figure 2.2, zero-indexed here.
        let mut l = Labeling::new(5);
        l.add(0, "off");
        l.add(1, "sleep");
        l.add(2, "idle");
        l.add(3, "receive").add(3, "busy");
        l.add(4, "transmit").add(4, "busy");

        assert!(l.has(3, "busy"));
        assert!(l.has(4, "busy"));
        assert!(!l.has(2, "busy"));
        assert_eq!(l.states_with("busy"), vec![false, false, false, true, true]);
        assert_eq!(
            l.all_propositions(),
            vec!["busy", "idle", "off", "receive", "sleep", "transmit"]
        );
        let aps: Vec<&str> = l.of_state(3).collect();
        assert_eq!(aps, vec!["busy", "receive"]);
    }

    #[test]
    fn duplicate_add_is_idempotent() {
        let mut l = Labeling::new(1);
        l.add(0, "a").add(0, "a");
        assert_eq!(l.of_state(0).count(), 1);
    }

    #[test]
    fn empty_labeling() {
        let l = Labeling::new(2);
        assert_eq!(l.num_states(), 2);
        assert!(l.all_propositions().is_empty());
        assert!(l.declared().is_empty());
        assert_eq!(l.states_with("x"), vec![false, false]);
    }

    #[test]
    fn declarations_track_the_vocabulary() {
        let mut l = Labeling::new(2);
        l.declare("unused").add(0, "used");
        assert_eq!(l.declared(), vec!["unused", "used"]);
        // Only `used` actually labels a state.
        assert_eq!(l.all_propositions(), vec!["used"]);
        // Declaring is idempotent and does not assign.
        l.declare("used");
        assert!(!l.has(0, "unused"));
        assert_eq!(l.declared().len(), 2);
    }

    #[test]
    #[should_panic]
    fn add_out_of_bounds_panics() {
        Labeling::new(1).add(1, "a");
    }

    #[test]
    fn common_to_intersects_member_labels() {
        let mut l = Labeling::new(4);
        l.add(0, "up").add(0, "fast");
        l.add(1, "up").add(1, "slow");
        l.add(2, "up").add(2, "fast");
        assert_eq!(l.common_to(&[0, 1, 2]), vec!["up"]);
        assert_eq!(l.common_to(&[0, 2]), vec!["fast", "up"]);
        assert_eq!(l.common_to(&[3]), Vec::<&str>::new());
        assert_eq!(l.common_to(&[]), Vec::<&str>::new());
        // The state-3 member empties every intersection.
        assert!(l.common_to(&[0, 3]).is_empty());
    }
}
