//! Steady-state analysis of CTMCs (Sections 2.4.2, 3.7 and 4.2).
//!
//! For a strongly connected chain, the stationary distribution solves
//! `π·Q = 0, Σπ = 1`. For a general chain the thesis' Eq. 3.2 applies:
//! decompose into BSCCs, solve each BSCC in isolation, and weight by the
//! probabilities of eventually entering each BSCC.

use mrmc_sparse::solver::{power_iteration, SolverOptions};
use mrmc_sparse::{vector, CooBuilder};

use crate::bscc::SccDecomposition;
use crate::ctmc::Ctmc;
use crate::error::ModelError;
use crate::reach;

/// Stationary distribution of a strongly connected CTMC by Gauss–Seidel on
/// the balance equations `π_i·(E(i) − R(i,i)) = Σ_{j≠i} π_j·R(j,i)`, with a
/// power-iteration fallback on the uniformized chain when Gauss–Seidel
/// stalls.
///
/// # Errors
///
/// Propagates solver failures; callers are expected to pass a chain that is
/// actually strongly connected (use [`SteadyStateAnalysis`] otherwise).
pub fn steady_state_strongly_connected(
    ctmc: &Ctmc,
    options: SolverOptions,
) -> Result<Vec<f64>, ModelError> {
    let n = ctmc.num_states();
    if n == 1 {
        return Ok(vec![1.0]);
    }
    let rt = ctmc.rates().transpose();
    let exit = ctmc.exit_rates();

    // Effective hold rate excluding self-loops; zero means the state cannot
    // be left, which contradicts strong connectedness for n > 1 — fall back
    // to power iteration which will surface the failure.
    let mut denom = vec![0.0; n];
    let mut degenerate = false;
    for i in 0..n {
        denom[i] = exit[i] - ctmc.rates().get(i, i);
        if denom[i] <= 0.0 {
            degenerate = true;
        }
    }

    if !degenerate {
        let mut pi = vec![1.0 / n as f64; n];
        for sweep in 0..options.max_iterations {
            let mut delta = 0.0_f64;
            for i in 0..n {
                let mut acc = 0.0;
                for (j, r) in rt.row(i) {
                    if j != i {
                        acc += pi[j] * r;
                    }
                }
                let next = acc / denom[i];
                delta = delta.max((next - pi[i]).abs());
                pi[i] = next;
            }
            mrmc_obs::record(|| mrmc_obs::Event::SolverSweep {
                iteration: sweep as u64 + 1,
                residual: delta,
            });
            if !vector::normalize_l1(&mut pi) {
                break;
            }
            if delta <= options.tolerance {
                vector::clamp_unit(&mut pi);
                let s = vector::sum(&pi);
                vector::scale(&mut pi, 1.0 / s);
                mrmc_obs::record(|| mrmc_obs::Event::SolverDone {
                    iterations: sweep as u64 + 1,
                    residual: delta,
                    converged: true,
                });
                return Ok(pi);
            }
        }
    }

    // Fallback: power iteration on the uniformized chain (aperiodic by
    // construction since Λ strictly dominates the exit rates).
    let (uni, _) = ctmc.uniformized(None)?;
    let start = vec![1.0 / n as f64; n];
    Ok(power_iteration(uni.probabilities(), &start, options)?)
}

/// One bottom strongly connected component together with its local
/// stationary distribution.
#[derive(Debug, Clone)]
pub struct BsccSteadyState {
    /// Global state indices of the component, sorted.
    pub states: Vec<usize>,
    /// Stationary probability of each state, aligned with `states`.
    pub distribution: Vec<f64>,
}

/// The full steady-state decomposition of a (possibly reducible) CTMC:
/// per-BSCC stationary vectors plus, for every state, the probability of
/// eventually entering each BSCC (Eq. 3.2).
#[derive(Debug, Clone)]
pub struct SteadyStateAnalysis {
    num_states: usize,
    bsccs: Vec<BsccSteadyState>,
    /// `reach[b][s]` = `P(s, ◇ B_b)`.
    reach: Vec<Vec<f64>>,
}

impl SteadyStateAnalysis {
    /// Run the decomposition: BSCC detection, one stationary solve per BSCC,
    /// and one reachability solve per BSCC.
    ///
    /// # Errors
    ///
    /// Propagates construction and solver failures.
    pub fn new(ctmc: &Ctmc, options: SolverOptions) -> Result<Self, ModelError> {
        let scc = SccDecomposition::new(ctmc.rates());
        let embedded = ctmc.embedded_dtmc();
        let n = ctmc.num_states();

        let mut bsccs = Vec::new();
        let mut reach_vectors = Vec::new();
        for (_, states) in scc.bsccs() {
            let distribution = if states.len() == 1 {
                vec![1.0]
            } else {
                let sub = restrict(ctmc, states)?;
                steady_state_strongly_connected(&sub, options)?
            };
            let mut target = vec![false; n];
            for &s in states {
                target[s] = true;
            }
            let r = reach::reach_probability(embedded.probabilities(), &target, options)?;
            bsccs.push(BsccSteadyState {
                states: states.to_vec(),
                distribution,
            });
            reach_vectors.push(r);
        }
        Ok(SteadyStateAnalysis {
            num_states: n,
            bsccs,
            reach: reach_vectors,
        })
    }

    /// Number of states of the analysed chain.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The BSCCs with their local stationary distributions.
    pub fn bsccs(&self) -> &[BsccSteadyState] {
        &self.bsccs
    }

    /// `P(s, ◇ B_b)` for BSCC index `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of bounds.
    pub fn reach_probabilities(&self, b: usize) -> &[f64] {
        &self.reach[b]
    }

    /// The long-run probability `π(from, target)` of Eq. 3.2:
    /// `Σ_B P(from, ◇B) · Σ_{s' ∈ B ∩ target} π^B(s')`.
    ///
    /// # Panics
    ///
    /// Panics if `from` or `target.len()` is out of bounds.
    pub fn probability_from(&self, from: usize, target: &[bool]) -> f64 {
        assert!(from < self.num_states, "state out of bounds");
        assert_eq!(target.len(), self.num_states, "target length mismatch");
        let mut total = 0.0;
        for (b, info) in self.bsccs.iter().enumerate() {
            let inside: f64 = info
                .states
                .iter()
                .zip(&info.distribution)
                .filter(|(&s, _)| target[s])
                .map(|(_, &p)| p)
                .sum();
            if inside > 0.0 {
                total += self.reach[b][from] * inside;
            }
        }
        total.clamp(0.0, 1.0)
    }

    /// The full long-run state distribution started from `from`.
    pub fn distribution_from(&self, from: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.num_states];
        for (b, info) in self.bsccs.iter().enumerate() {
            let w = self.reach[b][from];
            for (&s, &p) in info.states.iter().zip(&info.distribution) {
                out[s] += w * p;
            }
        }
        out
    }
}

/// The general steady-state distribution of a (possibly reducible) DTMC
/// from a given initial distribution (Section 2.3.2): decompose into BSCCs,
/// weight each BSCC's stationary vector by the probability of entering it.
///
/// Periodic BSCCs are handled through their stationary balance equations
/// (power iteration on the *lazy* chain `(P + I)/2`, which is aperiodic and
/// has the same stationary vector).
///
/// # Errors
///
/// Propagates solver failures.
pub fn dtmc_steady_state(
    dtmc: &crate::Dtmc,
    initial: &[f64],
    options: SolverOptions,
) -> Result<Vec<f64>, ModelError> {
    let n = dtmc.num_states();
    if initial.len() != n {
        return Err(ModelError::LabelingSizeMismatch {
            states: n,
            labeled: initial.len(),
        });
    }
    let probs = dtmc.probabilities();
    let scc = SccDecomposition::new(probs);

    let mut out = vec![0.0; n];
    for (_, states) in scc.bsccs() {
        // Entry probability of this BSCC from the initial distribution.
        let mut target = vec![false; n];
        for &s in states {
            target[s] = true;
        }
        let reach = reach::reach_probability(probs, &target, options)?;
        let weight: f64 = initial.iter().zip(&reach).map(|(p, r)| p * r).sum();
        if weight == 0.0 {
            continue;
        }
        // Stationary vector of the restricted (stochastic) sub-chain via
        // the lazy transform.
        let mut local_of = vec![usize::MAX; n];
        for (i, &s) in states.iter().enumerate() {
            local_of[s] = i;
        }
        let m = states.len();
        let mut b = CooBuilder::new(m, m);
        for &s in states {
            b.push(local_of[s], local_of[s], 0.5);
            for (t, v) in probs.row(s) {
                if v > 0.0 {
                    debug_assert_ne!(local_of[t], usize::MAX, "BSCC not closed");
                    b.push(local_of[s], local_of[t], 0.5 * v);
                }
            }
        }
        let lazy = b.build().expect("lazy matrix is well-formed");
        let start = vec![1.0 / m as f64; m];
        let pi = power_iteration(&lazy, &start, options)?;
        for (i, &s) in states.iter().enumerate() {
            out[s] += weight * pi[i];
        }
    }
    Ok(out)
}

/// Restrict a CTMC to a subset of states (assumed closed under transitions,
/// which holds for a BSCC).
fn restrict(ctmc: &Ctmc, states: &[usize]) -> Result<Ctmc, ModelError> {
    let mut local = vec![usize::MAX; ctmc.num_states()];
    for (i, &s) in states.iter().enumerate() {
        local[s] = i;
    }
    let mut b = CooBuilder::new(states.len(), states.len());
    for &s in states {
        for (t, r) in ctmc.rates().row(s) {
            debug_assert_ne!(local[t], usize::MAX, "BSCC not closed");
            if local[t] != usize::MAX {
                b.push(local[s], local[t], r);
            }
        }
    }
    Ctmc::new(
        b.build().expect("restricted matrix is well-formed"),
        crate::label::Labeling::new(states.len()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;

    #[test]
    fn two_state_birth_death() {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0).transition(1, 0, 3.0);
        let c = b.build().unwrap();
        let pi = steady_state_strongly_connected(&c, SolverOptions::new()).unwrap();
        assert!((pi[0] - 0.75).abs() < 1e-9);
        assert!((pi[1] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn example_3_5_full_pipeline() {
        // Figure 3.2 as a CTMC. `S(≥0.3)(b)` for s1: π(s1, Sat(b)) = 8/21.
        let mut b = CtmcBuilder::new(5);
        b.transition(0, 1, 2.0).transition(0, 4, 1.0);
        b.transition(1, 0, 1.0).transition(1, 2, 2.0);
        b.transition(2, 3, 2.0);
        b.transition(3, 2, 1.0);
        b.label(3, "b");
        let c = b.build().unwrap();

        let analysis = SteadyStateAnalysis::new(&c, SolverOptions::new()).unwrap();
        let target = c.labeling().states_with("b");
        let p = analysis.probability_from(0, &target);
        assert!((p - 8.0 / 21.0).abs() < 1e-9, "got {p}");

        // π^B1(s4) = 2/3, P(s1, ◇B1) = 4/7.
        let b1 = analysis
            .bsccs()
            .iter()
            .position(|i| i.states == vec![2, 3])
            .unwrap();
        let info = &analysis.bsccs()[b1];
        let idx_s4 = info.states.iter().position(|&s| s == 3).unwrap();
        assert!((info.distribution[idx_s4] - 2.0 / 3.0).abs() < 1e-9);
        assert!((analysis.reach_probabilities(b1)[0] - 4.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn distribution_from_sums_to_one() {
        let mut b = CtmcBuilder::new(5);
        b.transition(0, 1, 2.0).transition(0, 4, 1.0);
        b.transition(1, 0, 1.0).transition(1, 2, 2.0);
        b.transition(2, 3, 2.0);
        b.transition(3, 2, 1.0);
        let c = b.build().unwrap();
        let analysis = SteadyStateAnalysis::new(&c, SolverOptions::new()).unwrap();
        for s in 0..5 {
            let d = analysis.distribution_from(s);
            assert!((vector::sum(&d) - 1.0).abs() < 1e-8, "from {s}");
        }
    }

    #[test]
    fn strongly_connected_chain_single_bscc() {
        let mut b = CtmcBuilder::new(3);
        b.transition(0, 1, 1.0)
            .transition(1, 2, 1.0)
            .transition(2, 0, 1.0);
        let c = b.build().unwrap();
        let analysis = SteadyStateAnalysis::new(&c, SolverOptions::new()).unwrap();
        assert_eq!(analysis.bsccs().len(), 1);
        let d = analysis.distribution_from(0);
        for p in d {
            assert!((p - 1.0 / 3.0).abs() < 1e-8);
        }
    }

    #[test]
    fn absorbing_state_takes_all_mass() {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 5.0);
        let c = b.build().unwrap();
        let analysis = SteadyStateAnalysis::new(&c, SolverOptions::new()).unwrap();
        let d = analysis.distribution_from(0);
        assert_eq!(d, vec![0.0, 1.0]);
    }

    #[test]
    fn initial_state_matters_for_reducible_chain() {
        // Two absorbing states; probability splits by the first jump.
        let mut b = CtmcBuilder::new(3);
        b.transition(0, 1, 1.0).transition(0, 2, 3.0);
        let c = b.build().unwrap();
        let analysis = SteadyStateAnalysis::new(&c, SolverOptions::new()).unwrap();
        let d0 = analysis.distribution_from(0);
        assert!((d0[1] - 0.25).abs() < 1e-9);
        assert!((d0[2] - 0.75).abs() < 1e-9);
        let d1 = analysis.distribution_from(1);
        assert_eq!(d1, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn self_loops_do_not_disturb_steady_state() {
        // Self-loops leave the stationary distribution unchanged.
        let mut a = CtmcBuilder::new(2);
        a.transition(0, 1, 1.0).transition(1, 0, 3.0);
        let plain = a.build().unwrap();
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 1.0)
            .transition(1, 0, 3.0)
            .transition(0, 0, 7.0)
            .transition(1, 1, 2.0);
        let looped = b.build().unwrap();
        let p1 = steady_state_strongly_connected(&plain, SolverOptions::new()).unwrap();
        let p2 = steady_state_strongly_connected(&looped, SolverOptions::new()).unwrap();
        for (u, v) in p1.iter().zip(&p2) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn dtmc_steady_state_weights_bsccs() {
        // DTMC: 0 -> {1 (p=0.25), 2 (p=0.75)}; 1 and 2 absorbing.
        let mut b = CooBuilder::new(3, 3);
        b.push(0, 1, 0.25).push(0, 2, 0.75);
        b.push(1, 1, 1.0).push(2, 2, 1.0);
        let d = crate::Dtmc::new(b.build().unwrap(), crate::Labeling::new(3)).unwrap();
        let v = dtmc_steady_state(&d, &[1.0, 0.0, 0.0], SolverOptions::new()).unwrap();
        assert!((v[0]).abs() < 1e-12);
        assert!((v[1] - 0.25).abs() < 1e-9);
        assert!((v[2] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn dtmc_steady_state_handles_periodic_bscc() {
        // A deterministic 2-cycle: the limit of p(n) does not exist, but
        // the stationary distribution (1/2, 1/2) does.
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 1, 1.0).push(1, 0, 1.0);
        let d = crate::Dtmc::new(b.build().unwrap(), crate::Labeling::new(2)).unwrap();
        let v = dtmc_steady_state(&d, &[1.0, 0.0], SolverOptions::new()).unwrap();
        assert!((v[0] - 0.5).abs() < 1e-9);
        assert!((v[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn dtmc_steady_state_matches_power_iteration_when_aperiodic() {
        // Figure 2.1 DTMC is irreducible and aperiodic.
        let mut b = CooBuilder::new(3, 3);
        b.push(0, 0, 0.5).push(0, 1, 0.5);
        b.push(1, 0, 0.25).push(1, 2, 0.75);
        b.push(2, 0, 0.2).push(2, 1, 0.6).push(2, 2, 0.2);
        let d = crate::Dtmc::new(b.build().unwrap(), crate::Labeling::new(3)).unwrap();
        let v = dtmc_steady_state(&d, &[1.0, 0.0, 0.0], SolverOptions::new()).unwrap();
        assert!((v[0] - 14.0 / 45.0).abs() < 1e-8);
        assert!((v[1] - 16.0 / 45.0).abs() < 1e-8);
        assert!((v[2] - 1.0 / 3.0).abs() < 1e-8);
    }

    #[test]
    fn dtmc_steady_state_rejects_bad_initial() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 0, 1.0).push(1, 1, 1.0);
        let d = crate::Dtmc::new(b.build().unwrap(), crate::Labeling::new(2)).unwrap();
        assert!(dtmc_steady_state(&d, &[1.0], SolverOptions::new()).is_err());
    }

    #[test]
    fn gauss_seidel_agrees_with_power_iteration() {
        // A mildly stiff 4-state chain.
        let mut b = CtmcBuilder::new(4);
        b.transition(0, 1, 100.0)
            .transition(1, 2, 0.01)
            .transition(2, 3, 5.0)
            .transition(3, 0, 1.0)
            .transition(1, 0, 2.0)
            .transition(2, 1, 0.5);
        let c = b.build().unwrap();
        let gs = steady_state_strongly_connected(&c, SolverOptions::new()).unwrap();
        let (uni, _) = c.uniformized(None).unwrap();
        let pw = power_iteration(uni.probabilities(), &[0.25; 4], SolverOptions::new()).unwrap();
        for (u, v) in gs.iter().zip(&pw) {
            assert!((u - v).abs() < 1e-7, "{gs:?} vs {pw:?}");
        }
    }
}
