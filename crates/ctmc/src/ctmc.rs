//! The labeled continuous-time Markov chain (Definition 2.1).

use mrmc_sparse::{CooBuilder, CsrMatrix};

use crate::dtmc::Dtmc;
use crate::error::ModelError;
use crate::label::Labeling;

/// A labeled CTMC `C = (S, R, Label)` (Definition 2.1 of the thesis).
///
/// `R : S × S → ℝ≥0` is the rate matrix; there is a transition `s → s'` iff
/// `R(s, s') > 0`. Self-transitions are permitted, as the thesis' definition
/// explicitly allows. The labeling assigns atomic propositions to states.
///
/// Construct through [`crate::CtmcBuilder`] or [`Ctmc::new`].
#[derive(Debug, Clone, PartialEq)]
pub struct Ctmc {
    rates: CsrMatrix,
    labeling: Labeling,
    exit_rates: Vec<f64>,
}

impl Ctmc {
    /// Build a CTMC from a rate matrix and a labeling.
    ///
    /// # Errors
    ///
    /// * [`ModelError::EmptyModel`] — zero states;
    /// * [`ModelError::NonSquareMatrix`] — non-square rate matrix;
    /// * [`ModelError::NegativeEntry`] — a negative rate;
    /// * [`ModelError::LabelingSizeMismatch`] — labeling covers the wrong
    ///   number of states.
    pub fn new(rates: CsrMatrix, labeling: Labeling) -> Result<Self, ModelError> {
        if rates.nrows() == 0 {
            return Err(ModelError::EmptyModel);
        }
        if rates.nrows() != rates.ncols() {
            return Err(ModelError::NonSquareMatrix {
                nrows: rates.nrows(),
                ncols: rates.ncols(),
            });
        }
        if labeling.num_states() != rates.nrows() {
            return Err(ModelError::LabelingSizeMismatch {
                states: rates.nrows(),
                labeled: labeling.num_states(),
            });
        }
        for (r, c, v) in rates.iter() {
            if v < 0.0 {
                return Err(ModelError::NegativeEntry {
                    from: r,
                    to: c,
                    value: v,
                });
            }
        }
        let exit_rates = rates.row_sums();
        Ok(Ctmc {
            rates,
            labeling,
            exit_rates,
        })
    }

    /// Number of states `|S|`.
    pub fn num_states(&self) -> usize {
        self.rates.nrows()
    }

    /// The rate matrix `R`.
    pub fn rates(&self) -> &CsrMatrix {
        &self.rates
    }

    /// The labeling function.
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// Mutable access to the labeling (used by the checker to attach
    /// auxiliary propositions such as `atB` for BSCC reachability).
    pub fn labeling_mut(&mut self) -> &mut Labeling {
        &mut self.labeling
    }

    /// Total exit rate `E(s) = Σ_{s'} R(s, s')` of every state.
    pub fn exit_rates(&self) -> &[f64] {
        &self.exit_rates
    }

    /// Total exit rate of one state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn exit_rate(&self, state: usize) -> f64 {
        self.exit_rates[state]
    }

    /// `true` when the state has no outgoing transition (Definition 3.2).
    pub fn is_absorbing(&self, state: usize) -> bool {
        self.exit_rates[state] == 0.0
    }

    /// The one-step probability `P(s, s') = R(s, s') / E(s)` of the embedded
    /// DTMC; `0` from absorbing states.
    pub fn embedded_probability(&self, from: usize, to: usize) -> f64 {
        let e = self.exit_rates[from];
        if e == 0.0 {
            0.0
        } else {
            self.rates.get(from, to) / e
        }
    }

    /// The embedded (jump) DTMC. Absorbing states receive a probability-one
    /// self-loop so the result is stochastic.
    pub fn embedded_dtmc(&self) -> Dtmc {
        let n = self.num_states();
        let mut b = CooBuilder::with_capacity(n, n, self.rates.nnz() + n);
        for s in 0..n {
            let e = self.exit_rates[s];
            if e == 0.0 {
                b.push(s, s, 1.0);
            } else {
                for (t, r) in self.rates.row(s) {
                    b.push(s, t, r / e);
                }
            }
        }
        let probs = b.build().expect("embedded matrix is well-formed");
        Dtmc::new(probs, self.labeling.clone()).expect("embedded DTMC is stochastic")
    }

    /// The infinitesimal generator `Q = R − Diag(E)`.
    pub fn generator(&self) -> CsrMatrix {
        let n = self.num_states();
        let mut b = CooBuilder::with_capacity(n, n, self.rates.nnz() + n);
        for (r, c, v) in self.rates.iter() {
            b.push(r, c, v);
        }
        for s in 0..n {
            if self.exit_rates[s] != 0.0 {
                b.push(s, s, -self.exit_rates[s]);
            }
        }
        b.build().expect("generator is well-formed")
    }

    /// The uniformized DTMC `P = I + Q/Λ` and the rate `Λ` used
    /// (Section 2.4.1).
    ///
    /// When `rate` is `None`, `Λ` is chosen as `1.02 · max_s E(s)` (strictly
    /// above the maximal exit rate so every state keeps a self-loop and the
    /// uniformized chain is aperiodic); a degenerate all-absorbing chain gets
    /// `Λ = 1`.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidUniformizationRate`] when an explicit `rate`
    /// below the maximal exit rate (or non-positive/non-finite) is given.
    pub fn uniformized(&self, rate: Option<f64>) -> Result<(Dtmc, f64), ModelError> {
        let max_exit = self.exit_rates.iter().fold(0.0_f64, |m, &e| m.max(e));
        let lambda = match rate {
            Some(l) => {
                if !(l.is_finite() && l > 0.0 && l >= max_exit) {
                    return Err(ModelError::InvalidUniformizationRate {
                        requested: l,
                        minimum: max_exit,
                    });
                }
                l
            }
            None => {
                if max_exit == 0.0 {
                    1.0
                } else {
                    1.02 * max_exit
                }
            }
        };

        let n = self.num_states();
        let mut b = CooBuilder::with_capacity(n, n, self.rates.nnz() + n);
        for s in 0..n {
            let mut self_loop = 1.0 - self.exit_rates[s] / lambda;
            for (t, r) in self.rates.row(s) {
                if t == s {
                    self_loop += r / lambda;
                } else {
                    b.push(s, t, r / lambda);
                }
            }
            // Clamp round-off; exact uniformization at Λ = E(s) can leave a
            // tiny negative residue.
            if self_loop > 1e-15 {
                b.push(s, s, self_loop);
            }
        }
        let probs = b.build().expect("uniformized matrix is well-formed");
        let dtmc = Dtmc::new(probs, self.labeling.clone())?;
        Ok((dtmc, lambda))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtmcBuilder;

    /// The WaveLAN modem of Example 2.4 / 4.2 (states 0..=4 for 1..=5).
    pub(crate) fn wavelan() -> Ctmc {
        let mut b = CtmcBuilder::new(5);
        b.transition(0, 1, 0.1);
        b.transition(1, 0, 0.05).transition(1, 2, 5.0);
        b.transition(2, 1, 12.0)
            .transition(2, 3, 1.5)
            .transition(2, 4, 0.75);
        b.transition(3, 2, 10.0);
        b.transition(4, 2, 15.0);
        b.label(0, "off");
        b.label(1, "sleep");
        b.label(2, "idle");
        b.label(3, "receive").label(3, "busy");
        b.label(4, "transmit").label(4, "busy");
        b.build().unwrap()
    }

    #[test]
    fn exit_rates_of_example_4_2() {
        let c = wavelan();
        let e = c.exit_rates();
        assert!((e[0] - 0.1).abs() < 1e-12);
        assert!((e[1] - 5.05).abs() < 1e-12);
        assert!((e[2] - 14.25).abs() < 1e-12);
        assert!((e[3] - 10.0).abs() < 1e-12);
        assert!((e[4] - 15.0).abs() < 1e-12);
    }

    #[test]
    fn uniformization_of_example_4_2() {
        // Λ = max E(s) = 15 gives the P matrix printed in the thesis.
        let c = wavelan();
        let (dtmc, lambda) = c.uniformized(Some(15.0)).unwrap();
        assert_eq!(lambda, 15.0);
        let p = dtmc.probabilities();
        assert!((p.get(0, 0) - 149.0 / 150.0).abs() < 1e-12);
        assert!((p.get(0, 1) - 1.0 / 150.0).abs() < 1e-12);
        assert!((p.get(1, 0) - 5.0 / 1500.0).abs() < 1e-12);
        assert!((p.get(1, 1) - 995.0 / 1500.0).abs() < 1e-12);
        assert!((p.get(1, 2) - 500.0 / 1500.0).abs() < 1e-12);
        assert!((p.get(2, 1) - 1200.0 / 1500.0).abs() < 1e-12);
        assert!((p.get(2, 2) - 75.0 / 1500.0).abs() < 1e-12);
        assert!((p.get(2, 3) - 150.0 / 1500.0).abs() < 1e-12);
        assert!((p.get(2, 4) - 75.0 / 1500.0).abs() < 1e-12);
        assert!((p.get(3, 2) - 2.0 / 3.0).abs() < 1e-12);
        assert!((p.get(3, 3) - 1.0 / 3.0).abs() < 1e-12);
        assert!((p.get(4, 2) - 1.0).abs() < 1e-12);
        assert_eq!(p.get(4, 4), 0.0);
    }

    #[test]
    fn default_lambda_strictly_dominates() {
        let c = wavelan();
        let (_, lambda) = c.uniformized(None).unwrap();
        assert!(lambda > 15.0);
    }

    #[test]
    fn invalid_lambda_rejected() {
        let c = wavelan();
        assert!(matches!(
            c.uniformized(Some(10.0)),
            Err(ModelError::InvalidUniformizationRate { .. })
        ));
        assert!(matches!(
            c.uniformized(Some(-1.0)),
            Err(ModelError::InvalidUniformizationRate { .. })
        ));
        assert!(matches!(
            c.uniformized(Some(f64::NAN)),
            Err(ModelError::InvalidUniformizationRate { .. })
        ));
    }

    #[test]
    fn embedded_dtmc_probabilities() {
        let c = wavelan();
        let d = c.embedded_dtmc();
        let p = d.probabilities();
        assert!((p.get(2, 3) - 1.5 / 14.25).abs() < 1e-12);
        assert!((p.get(2, 4) - 0.75 / 14.25).abs() < 1e-12);
        assert!((p.get(3, 2) - 1.0).abs() < 1e-12);
        assert!((c.embedded_probability(2, 3) - 1.5 / 14.25).abs() < 1e-12);
    }

    #[test]
    fn absorbing_state_detection_and_embedding() {
        let mut b = CtmcBuilder::new(2);
        b.transition(0, 1, 3.0);
        let c = b.build().unwrap();
        assert!(!c.is_absorbing(0));
        assert!(c.is_absorbing(1));
        assert_eq!(c.embedded_probability(1, 0), 0.0);
        // Absorbing state gets a self-loop in the embedded DTMC.
        assert_eq!(c.embedded_dtmc().probabilities().get(1, 1), 1.0);
    }

    #[test]
    fn generator_rows_sum_to_zero() {
        let c = wavelan();
        let q = c.generator();
        for s in q.row_sums() {
            assert!(s.abs() < 1e-12);
        }
        assert!((q.get(2, 2) + 14.25).abs() < 1e-12);
    }

    #[test]
    fn uniformized_all_absorbing_chain() {
        let c = Ctmc::new(CsrMatrix::zeros(2, 2), Labeling::new(2)).unwrap();
        let (d, lambda) = c.uniformized(None).unwrap();
        assert_eq!(lambda, 1.0);
        assert_eq!(d.probabilities().get(0, 0), 1.0);
        assert_eq!(d.probabilities().get(1, 1), 1.0);
    }

    #[test]
    fn construction_errors() {
        assert!(matches!(
            Ctmc::new(CsrMatrix::zeros(0, 0), Labeling::new(0)),
            Err(ModelError::EmptyModel)
        ));
        assert!(matches!(
            Ctmc::new(CsrMatrix::zeros(2, 3), Labeling::new(2)),
            Err(ModelError::NonSquareMatrix { .. })
        ));
        assert!(matches!(
            Ctmc::new(CsrMatrix::zeros(2, 2), Labeling::new(3)),
            Err(ModelError::LabelingSizeMismatch { .. })
        ));
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 1, -1.0);
        assert!(matches!(
            Ctmc::new(b.build().unwrap(), Labeling::new(2)),
            Err(ModelError::NegativeEntry { .. })
        ));
    }

    #[test]
    fn self_loops_are_preserved() {
        let mut b = CtmcBuilder::new(1);
        b.transition(0, 0, 2.0);
        let c = b.build().unwrap();
        assert_eq!(c.exit_rate(0), 2.0);
        // Uniformized with Λ = 4: P(0,0) = 1 - 2/4 + 2/4 = 1.
        let (d, _) = c.uniformized(Some(4.0)).unwrap();
        assert!((d.probabilities().get(0, 0) - 1.0).abs() < 1e-12);
    }
}
