//! Unbounded reachability probabilities (Eq. 3.8 of the thesis).
//!
//! `P(s, Φ U Ψ)` is the least solution of a linear system over the embedded
//! DTMC. A graph pre-pass identifies the states with probability zero so the
//! remaining system has a unique solution, which the configured iterative
//! solver ([`mrmc_sparse::solver::solve`]) then finds — plain Gauss–Seidel by
//! default, or the multicolor parallel variant when
//! [`SolverOptions::method`] selects it.

use mrmc_sparse::solver::{solve, SolverOptions};
use mrmc_sparse::{CooBuilder, CsrMatrix};

use crate::error::ModelError;

/// Compute `P(s, Φ U Ψ)` for every state over a (sub)stochastic transition
/// matrix `probs` (typically an embedded DTMC).
///
/// `phi` and `psi` are characteristic vectors of the Φ- and Ψ-states.
/// The returned vector holds, per state, the probability of reaching a
/// Ψ-state along Φ-states only.
///
/// # Errors
///
/// * [`ModelError::LabelingSizeMismatch`] — `phi`/`psi` of the wrong length;
/// * solver failures are propagated as [`ModelError::Solve`].
pub fn until_unbounded(
    probs: &CsrMatrix,
    phi: &[bool],
    psi: &[bool],
    options: SolverOptions,
) -> Result<Vec<f64>, ModelError> {
    until_unbounded_with(probs, phi, psi, psi, options)
}

/// [`until_unbounded`] with an enlarged *sure* set: every state in `one`
/// is pre-assigned probability 1 and acts as an absorbing goal for the
/// linear system, exactly as the Ψ-states do.
///
/// `one` must be a superset of the Ψ-states for which `P(s, Φ U Ψ) = 1`
/// is already known (e.g. a verified qualitative certificate's certain-one
/// set); passing `one = psi` reproduces [`until_unbounded`] bit for bit.
/// A strictly larger `one` shrinks the "maybe" block the solver sweeps
/// over — that is the slicing win — at the price of a (tiny, bounded by
/// solver tolerance) difference in the remaining states' floats.
///
/// # Errors
///
/// * [`ModelError::LabelingSizeMismatch`] — any vector of the wrong length;
/// * solver failures are propagated as [`ModelError::Solve`].
pub fn until_unbounded_with(
    probs: &CsrMatrix,
    phi: &[bool],
    psi: &[bool],
    one: &[bool],
    options: SolverOptions,
) -> Result<Vec<f64>, ModelError> {
    let n = probs.nrows();
    for v in [phi, psi, one] {
        if v.len() != n {
            return Err(ModelError::LabelingSizeMismatch {
                states: n,
                labeled: v.len(),
            });
        }
    }

    // Backward graph pass: `can_reach[s]` iff a sure state is reachable
    // from `s` through Φ-states. Everything else has probability exactly
    // zero, and excluding it makes the linear system non-singular.
    let reverse = probs.transpose();
    let mut can_reach = vec![false; n];
    let mut queue: Vec<usize> = Vec::new();
    for s in 0..n {
        if one[s] {
            can_reach[s] = true;
            queue.push(s);
        }
    }
    while let Some(t) = queue.pop() {
        for (s, v) in reverse.row(t) {
            if v > 0.0 && !can_reach[s] && phi[s] && !one[s] {
                can_reach[s] = true;
                queue.push(s);
            }
        }
    }

    // "Maybe" states need the linear solve.
    let maybe: Vec<usize> = (0..n).filter(|&s| can_reach[s] && !one[s]).collect();
    let mut local_of = vec![usize::MAX; n];
    for (i, &s) in maybe.iter().enumerate() {
        local_of[s] = i;
    }

    let mut result = vec![0.0; n];
    for s in 0..n {
        if one[s] {
            result[s] = 1.0;
        }
    }
    if maybe.is_empty() {
        return Ok(result);
    }

    // Assemble (I - P_mm) x = P_my · 1.
    let m = maybe.len();
    let mut a = CooBuilder::new(m, m);
    let mut b = vec![0.0; m];
    for (i, &s) in maybe.iter().enumerate() {
        a.push(i, i, 1.0);
        for (t, p) in probs.row(s) {
            if p <= 0.0 {
                continue;
            }
            if one[t] {
                b[i] += p;
            } else if local_of[t] != usize::MAX {
                a.push(i, local_of[t], -p);
            }
        }
    }
    let a = a.build().expect("reachability system is well-formed");
    let x = solve(&a, &b, &vec![0.0; m], options)?;
    for (i, &s) in maybe.iter().enumerate() {
        result[s] = x[i].clamp(0.0, 1.0);
    }
    Ok(result)
}

/// `P(s, ◇ target)`: unbounded reachability with `Φ = tt`.
///
/// # Errors
///
/// See [`until_unbounded`].
pub fn reach_probability(
    probs: &CsrMatrix,
    target: &[bool],
    options: SolverOptions,
) -> Result<Vec<f64>, ModelError> {
    let phi = vec![true; probs.nrows()];
    until_unbounded(probs, &phi, target, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: &[Vec<f64>]) -> CsrMatrix {
        let mut b = CooBuilder::new(rows.len(), rows[0].len());
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    b.push(i, j, v);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn example_3_5_reach_probability() {
        // Embedded DTMC of Figure 3.2: P(s1, ◇B1) = 4/7 where B1 = {s3, s4}.
        // States 0..=4 for s1..=s5; rates 2,1 from s1; 2,1 from s2; etc.
        // s1 -> s2 with 2/3, s1 -> s5 with 1/3;
        // s2 -> s3 with 2/3, s2 -> s1 with 1/3;
        // s3 <-> s4; s5 absorbing.
        let p = matrix(&[
            vec![0.0, 2.0 / 3.0, 0.0, 0.0, 1.0 / 3.0],
            vec![1.0 / 3.0, 0.0, 2.0 / 3.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 1.0],
        ]);
        let target = vec![false, false, true, true, false];
        let r = reach_probability(&p, &target, SolverOptions::new()).unwrap();
        assert!((r[0] - 4.0 / 7.0).abs() < 1e-10);
        assert!((r[1] - 6.0 / 7.0).abs() < 1e-10);
        assert_eq!(r[2], 1.0);
        assert_eq!(r[3], 1.0);
        assert_eq!(r[4], 0.0);
    }

    #[test]
    fn phi_constraint_blocks_paths() {
        // 0 -> 1 -> 2(target); 1 is not a Φ-state, so P(0, Φ U Ψ) = 0.
        let p = matrix(&[
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![0.0, 0.0, 1.0],
        ]);
        let phi = vec![true, false, true];
        let psi = vec![false, false, true];
        let r = until_unbounded(&p, &phi, &psi, SolverOptions::new()).unwrap();
        assert_eq!(r[0], 0.0);
        assert_eq!(r[1], 0.0);
        assert_eq!(r[2], 1.0);
    }

    #[test]
    fn psi_state_counts_even_if_not_phi() {
        // Ψ-states satisfy the until immediately regardless of Φ.
        let p = matrix(&[vec![0.0, 1.0], vec![0.0, 1.0]]);
        let phi = vec![true, false];
        let psi = vec![false, true];
        let r = until_unbounded(&p, &phi, &psi, SolverOptions::new()).unwrap();
        assert_eq!(r, vec![1.0, 1.0]);
    }

    #[test]
    fn self_loop_maybe_state_converges() {
        // State 0 loops with 0.9, escapes to target with 0.1: probability 1.
        let p = matrix(&[vec![0.9, 0.1], vec![0.0, 1.0]]);
        let psi = vec![false, true];
        let r = reach_probability(&p, &psi, SolverOptions::new()).unwrap();
        assert!((r[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn competing_absorbing_targets() {
        // 0 -> target with 0.3, -> sink with 0.7.
        let p = matrix(&[
            vec![0.0, 0.3, 0.7],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ]);
        let psi = vec![false, true, false];
        let r = reach_probability(&p, &psi, SolverOptions::new()).unwrap();
        assert!((r[0] - 0.3).abs() < 1e-12);
        assert_eq!(r[2], 0.0);
    }

    #[test]
    fn empty_target_gives_zero_everywhere() {
        let p = matrix(&[vec![1.0]]);
        let r = reach_probability(&p, &[false], SolverOptions::new()).unwrap();
        assert_eq!(r, vec![0.0]);
    }

    #[test]
    fn wrong_lengths_rejected() {
        let p = matrix(&[vec![1.0]]);
        assert!(matches!(
            until_unbounded(&p, &[true, true], &[false], SolverOptions::new()),
            Err(ModelError::LabelingSizeMismatch { .. })
        ));
        assert!(matches!(
            until_unbounded(&p, &[true], &[false, false], SolverOptions::new()),
            Err(ModelError::LabelingSizeMismatch { .. })
        ));
    }

    #[test]
    fn colored_solver_matches_plain_on_reachability() {
        use mrmc_sparse::solver::SolverMethod;
        // Same system as example_3_5: the colored method must agree with the
        // plain solver to well within both solvers' tolerance.
        let p = matrix(&[
            vec![0.0, 2.0 / 3.0, 0.0, 0.0, 1.0 / 3.0],
            vec![1.0 / 3.0, 0.0, 2.0 / 3.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 1.0],
        ]);
        let target = vec![false, false, true, true, false];
        let colored = reach_probability(
            &p,
            &target,
            SolverOptions::new()
                .with_method(SolverMethod::ColoredGaussSeidel)
                .with_threads(2),
        )
        .unwrap();
        assert!((colored[0] - 4.0 / 7.0).abs() < 1e-10);
        assert!((colored[1] - 6.0 / 7.0).abs() < 1e-10);
        assert_eq!(colored[2], 1.0);
        assert_eq!(colored[4], 0.0);
    }

    #[test]
    fn sure_set_equal_to_psi_is_bitwise_identical() {
        let p = matrix(&[
            vec![0.0, 2.0 / 3.0, 0.0, 0.0, 1.0 / 3.0],
            vec![1.0 / 3.0, 0.0, 2.0 / 3.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 1.0],
        ]);
        let phi = vec![true; 5];
        let psi = vec![false, false, true, true, false];
        let plain = until_unbounded(&p, &phi, &psi, SolverOptions::new()).unwrap();
        let with = until_unbounded_with(&p, &phi, &psi, &psi, SolverOptions::new()).unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&plain), bits(&with));
    }

    #[test]
    fn enlarged_sure_set_preassigns_ones_and_shrinks_the_system() {
        // 0 -> 1 -> 2(target); every state reaches the target surely, so a
        // certificate may pre-assign 1 everywhere — no solve remains.
        let p = matrix(&[
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![0.0, 0.0, 1.0],
        ]);
        let phi = vec![true, true, true];
        let psi = vec![false, false, true];
        let one = vec![true, true, true];
        let r = until_unbounded_with(&p, &phi, &psi, &one, SolverOptions::new()).unwrap();
        assert_eq!(r, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn unreachable_component_gets_zero_without_solver_issues() {
        // Two disconnected cycles; target in the second one.
        let p = matrix(&[
            vec![0.0, 1.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 1.0],
            vec![0.0, 0.0, 1.0, 0.0],
        ]);
        let psi = vec![false, false, false, true];
        let r = reach_probability(&p, &psi, SolverOptions::new()).unwrap();
        assert_eq!(r, vec![0.0, 0.0, 1.0, 1.0]);
    }
}
