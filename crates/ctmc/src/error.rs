//! Model-construction and analysis errors for Markov chains.

use std::error::Error;
use std::fmt;

use mrmc_sparse::SolveError;

/// An error raised while constructing or analysing a Markov chain.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The model has no states.
    EmptyModel,
    /// The transition matrix is not square.
    NonSquareMatrix {
        /// Number of rows found.
        nrows: usize,
        /// Number of columns found.
        ncols: usize,
    },
    /// A rate or probability entry is negative.
    NegativeEntry {
        /// Source state of the offending entry.
        from: usize,
        /// Target state of the offending entry.
        to: usize,
        /// The offending value.
        value: f64,
    },
    /// The labeling covers a different number of states than the matrix.
    LabelingSizeMismatch {
        /// States in the matrix.
        states: usize,
        /// States covered by the labeling.
        labeled: usize,
    },
    /// A DTMC row does not sum to one.
    NotStochastic {
        /// The offending row (state).
        row: usize,
        /// Its actual sum.
        sum: f64,
    },
    /// A uniformization rate below the maximal exit rate was requested.
    InvalidUniformizationRate {
        /// The requested rate.
        requested: f64,
        /// The minimal admissible rate (the maximal exit rate).
        minimum: f64,
    },
    /// A state index outside the model was referenced.
    StateOutOfBounds {
        /// The offending state index.
        state: usize,
        /// Number of states in the model.
        states: usize,
    },
    /// An underlying linear solve failed.
    Solve(SolveError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyModel => write!(f, "model has no states"),
            ModelError::NonSquareMatrix { nrows, ncols } => {
                write!(f, "transition matrix is {nrows}x{ncols}, expected square")
            }
            ModelError::NegativeEntry { from, to, value } => {
                write!(f, "negative entry {value} on transition {from} -> {to}")
            }
            ModelError::LabelingSizeMismatch { states, labeled } => write!(
                f,
                "labeling covers {labeled} states but the model has {states}"
            ),
            ModelError::NotStochastic { row, sum } => {
                write!(f, "row {row} sums to {sum}, expected 1")
            }
            ModelError::InvalidUniformizationRate { requested, minimum } => write!(
                f,
                "uniformization rate {requested} below maximal exit rate {minimum}"
            ),
            ModelError::StateOutOfBounds { state, states } => {
                write!(
                    f,
                    "state {state} out of bounds for a model with {states} states"
                )
            }
            ModelError::Solve(e) => write!(f, "linear solve failed: {e}"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for ModelError {
    fn from(e: SolveError) -> Self {
        ModelError::Solve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(ModelError::EmptyModel.to_string().contains("no states"));
        assert!(ModelError::NonSquareMatrix { nrows: 2, ncols: 3 }
            .to_string()
            .contains("2x3"));
        assert!(ModelError::NegativeEntry {
            from: 1,
            to: 2,
            value: -0.5
        }
        .to_string()
        .contains("-0.5"));
        assert!(ModelError::LabelingSizeMismatch {
            states: 4,
            labeled: 2
        }
        .to_string()
        .contains('4'));
        assert!(ModelError::NotStochastic { row: 0, sum: 0.9 }
            .to_string()
            .contains("0.9"));
        assert!(ModelError::InvalidUniformizationRate {
            requested: 1.0,
            minimum: 2.0
        }
        .to_string()
        .contains("below"));
        assert!(ModelError::StateOutOfBounds {
            state: 9,
            states: 3
        }
        .to_string()
        .contains('9'));
    }

    #[test]
    fn solve_error_wraps_with_source() {
        let e: ModelError = SolveError::Singular.into();
        assert!(e.to_string().contains("singular"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
