//! Strongly connected components and bottom-SCC detection (Algorithm 4.2).
//!
//! The thesis augments Tarjan's algorithm with a `reachSCC` flag to detect
//! *bottom* strongly connected components (BSCCs): components no transition
//! leaves. We implement Tarjan iteratively (explicit stack, so deep chains
//! cannot overflow the call stack) and derive bottomness by checking that
//! every successor of every member stays inside the component — the same
//! `O(M + N)` cost as the thesis' in-line flag.

use mrmc_sparse::CsrMatrix;

/// The SCC decomposition of a directed graph given by the non-zero pattern
/// of a square matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SccDecomposition {
    components: Vec<Vec<usize>>,
    component_of: Vec<usize>,
    bottom: Vec<bool>,
}

impl SccDecomposition {
    /// Decompose the graph whose edges are the strictly positive entries of
    /// `matrix` (a rate or probability matrix).
    ///
    /// # Panics
    ///
    /// Panics if `matrix` is not square.
    pub fn new(matrix: &CsrMatrix) -> Self {
        assert_eq!(matrix.nrows(), matrix.ncols(), "matrix must be square");
        let n = matrix.nrows();

        // Iterative Tarjan.
        const UNVISITED: usize = usize::MAX;
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut components: Vec<Vec<usize>> = Vec::new();
        let mut component_of = vec![UNVISITED; n];

        // DFS frames: (vertex, iterator position over its successor list).
        let mut succ: Vec<Vec<usize>> = (0..n)
            .map(|s| {
                matrix
                    .row(s)
                    .filter(|&(_, v)| v > 0.0)
                    .map(|(c, _)| c)
                    .collect()
            })
            .collect();
        // Deduplicate successors (parallel entries are impossible in CSR but
        // self-loops are fine either way); keep as-is.
        for list in &mut succ {
            list.dedup();
        }

        for root in 0..n {
            if index[root] != UNVISITED {
                continue;
            }
            let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
            index[root] = next_index;
            lowlink[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;

            while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
                if *pos < succ[v].len() {
                    let w = succ[v][*pos];
                    *pos += 1;
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            component_of[w] = components.len();
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        components.push(comp);
                    }
                }
            }
        }

        // Bottom check: a component is bottom iff no member has a successor
        // outside the component.
        let mut bottom = vec![true; components.len()];
        for s in 0..n {
            let cs = component_of[s];
            for &t in &succ[s] {
                if component_of[t] != cs {
                    bottom[cs] = false;
                }
            }
        }

        SccDecomposition {
            components,
            component_of,
            bottom,
        }
    }

    /// Number of SCCs.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// States of component `c`, sorted.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn component(&self, c: usize) -> &[usize] {
        &self.components[c]
    }

    /// Index of the component containing `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of bounds.
    pub fn component_of(&self, state: usize) -> usize {
        self.component_of[state]
    }

    /// `true` when component `c` is a bottom SCC.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn is_bottom(&self, c: usize) -> bool {
        self.bottom[c]
    }

    /// `true` when `state` belongs to a bottom SCC.
    pub fn is_bottom_state(&self, state: usize) -> bool {
        self.bottom[self.component_of[state]]
    }

    /// Iterate over the bottom SCCs as `(component index, states)` pairs —
    /// the `bsccList` of Algorithm 4.2.
    pub fn bsccs(&self) -> impl Iterator<Item = (usize, &[usize])> {
        self.components
            .iter()
            .enumerate()
            .filter(|&(c, _)| self.bottom[c])
            .map(|(c, states)| (c, states.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrmc_sparse::CooBuilder;

    fn graph(n: usize, edges: &[(usize, usize)]) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for &(u, v) in edges {
            b.push(u, v, 1.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn figure_3_2_has_two_bsccs() {
        // s1 -> s2 (and s1 -> s5), s2 -> s1, s2 -> s3; B1 = {s3, s4}, B2 = {s5}.
        // Zero-indexed: 0..=4.
        let m = graph(5, &[(0, 1), (0, 4), (1, 0), (1, 2), (2, 3), (3, 2), (4, 4)]);
        let d = SccDecomposition::new(&m);
        let bsccs: Vec<Vec<usize>> = d.bsccs().map(|(_, s)| s.to_vec()).collect();
        assert_eq!(bsccs.len(), 2);
        assert!(bsccs.contains(&vec![2, 3]));
        assert!(bsccs.contains(&vec![4]));
        assert!(!d.is_bottom_state(0));
        assert!(!d.is_bottom_state(1));
        assert!(d.is_bottom_state(2));
        assert!(d.is_bottom_state(4));
        assert_eq!(d.component_of(2), d.component_of(3));
        assert_ne!(d.component_of(0), d.component_of(2));
    }

    #[test]
    fn strongly_connected_graph_is_single_bscc() {
        let m = graph(3, &[(0, 1), (1, 2), (2, 0)]);
        let d = SccDecomposition::new(&m);
        assert_eq!(d.num_components(), 1);
        assert!(d.is_bottom(0));
        assert_eq!(d.component(0), &[0, 1, 2]);
    }

    #[test]
    fn absorbing_state_is_singleton_bscc() {
        let m = graph(2, &[(0, 1)]);
        let d = SccDecomposition::new(&m);
        assert_eq!(d.num_components(), 2);
        let bsccs: Vec<Vec<usize>> = d.bsccs().map(|(_, s)| s.to_vec()).collect();
        assert_eq!(bsccs, vec![vec![1]]);
    }

    #[test]
    fn isolated_state_without_self_loop_is_bottom() {
        // A state with no outgoing edges at all: vacuously bottom (it is
        // absorbing).
        let m = graph(1, &[]);
        let d = SccDecomposition::new(&m);
        assert!(d.is_bottom(0));
    }

    #[test]
    fn transient_cycle_is_not_bottom() {
        // 0 <-> 1 cycle that can escape to absorbing 2.
        let m = graph(3, &[(0, 1), (1, 0), (1, 2), (2, 2)]);
        let d = SccDecomposition::new(&m);
        assert!(!d.is_bottom_state(0));
        assert!(!d.is_bottom_state(1));
        assert!(d.is_bottom_state(2));
    }

    #[test]
    fn long_chain_does_not_overflow() {
        // 10_000-state chain exercises the iterative DFS.
        let n = 10_000;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let m = graph(n, &edges);
        let d = SccDecomposition::new(&m);
        assert_eq!(d.num_components(), n);
        let bottoms: Vec<usize> = d.bsccs().map(|(c, _)| c).collect();
        assert_eq!(bottoms.len(), 1);
        assert!(d.is_bottom_state(n - 1));
    }

    #[test]
    fn self_loops_do_not_break_bottomness() {
        let m = graph(2, &[(0, 0), (0, 1), (1, 1)]);
        let d = SccDecomposition::new(&m);
        assert!(!d.is_bottom_state(0));
        assert!(d.is_bottom_state(1));
    }

    #[test]
    fn two_intertwined_cycles_merge() {
        let m = graph(4, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]);
        let d = SccDecomposition::new(&m);
        assert_eq!(d.num_components(), 1);
        assert!(d.is_bottom(0));
    }
}
