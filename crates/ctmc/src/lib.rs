//! Labeled continuous-time Markov chains and their analyses.
//!
//! This crate implements Chapter 2 of *Model Checking Markov Reward Models
//! with Impulse Rewards*: labeled CTMCs and DTMCs ([`Ctmc`], [`Dtmc`],
//! [`Labeling`]), uniformization, transient analysis, steady-state analysis,
//! bottom-strongly-connected-component detection (Algorithm 4.2) and
//! unbounded reachability (Eq. 3.8) — the chain-level substrate the reward
//! model checker builds on.
//!
//! # Example
//!
//! ```
//! use mrmc_ctmc::CtmcBuilder;
//!
//! // A two-state on/off chain: fails at rate 0.1, repairs at rate 0.9.
//! let mut b = CtmcBuilder::new(2);
//! b.transition(0, 1, 0.1).transition(1, 0, 0.9);
//! b.label(0, "up").label(1, "down");
//! let ctmc = b.build()?;
//!
//! let analysis = mrmc_ctmc::steady::SteadyStateAnalysis::new(&ctmc, Default::default())?;
//! let up = analysis.probability_from(0, &ctmc.labeling().states_with("up"));
//! assert!((up - 0.9).abs() < 1e-9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bscc;
mod builder;
mod ctmc;
mod dtmc;
mod error;
mod label;
pub mod poisson;
pub mod reach;
pub mod steady;
pub mod transient;

pub use builder::CtmcBuilder;
pub use ctmc::Ctmc;
pub use dtmc::Dtmc;
pub use error::ModelError;
pub use label::Labeling;
