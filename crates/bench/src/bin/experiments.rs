//! Regenerate every table and figure of the evaluation chapter.
//!
//! ```text
//! experiments [all|table5.1|table5.2|table5.3|table5.4|table5.5|table5.6|
//!              table5.7|table5.8|figures] [--out <dir>]
//! ```
//!
//! Tables are printed to stdout with the same row structure as the thesis;
//! `figures` (also included in `all`) writes the CSV series behind
//! Figures 5.3, 5.4 and 5.5 to the output directory (default
//! `experiments-out/`). The extra `validate` command cross-checks the
//! three engines (uniformization, discretization, Monte-Carlo simulation)
//! against each other on the evaluation queries.

use std::path::PathBuf;
use std::process::ExitCode;

use mrmc_bench::tables;
use mrmc_bench::{fmt_e, fmt_p, timed};
use mrmc_models::queue::{queue, QueueConfig};
use mrmc_models::tmr::{tmr, TmrConfig};
use mrmc_models::wavelan;
use mrmc_numerics::discretization::{self, DiscretizationOptions};
use mrmc_numerics::monte_carlo::{estimate_until, SimulationOptions};
use mrmc_numerics::uniformization::{self, UniformOptions};

fn print_table_5_1() {
    println!("== Table 5.1: Result without Impulse Rewards (phone model) ==");
    println!("   formula: P(>0.5)[(Call_Idle || Doze) U[0,24][0,600] Call_Initiated]");
    let out = tables::table_5_1(&[1.0 / 16.0, 1.0 / 32.0, 1.0 / 64.0]);
    println!(
        "   reference (uniformization, w=1e-11, improved pruning): {} (error bound {})",
        fmt_p(out.reference),
        fmt_e(out.reference_error)
    );
    println!(
        "   {:>8} | {:>22} | {:>12}",
        "d", "Pr{{Y<=600, X|=Psi}}", "time (s)"
    );
    for row in &out.rows {
        println!(
            "   {:>8} | {:>22} | {:>12.3}",
            format!("1/{}", (1.0 / row.d).round() as u64),
            fmt_p(row.probability),
            row.seconds
        );
    }
    println!();
}

fn print_rates(config: &TmrConfig, title: &str) {
    println!("== {title} ==");
    let fail = if config.variable_failure {
        format!("n x {}", config.module_failure_rate)
    } else {
        format!("{}", config.module_failure_rate)
    };
    println!("   failure of modules : {fail} / hour");
    println!(
        "   failure of voter   : {} / hour",
        config.voter_failure_rate
    );
    println!(
        "   repair of modules  : {} / hour",
        config.module_repair_rate
    );
    println!(
        "   repair of voter    : {} / hour",
        config.voter_repair_rate
    );
    println!(
        "   state rewards      : {} + {} per failed module; vdown {}",
        config.base_state_reward, config.per_failed_module_reward, config.vdown_state_reward
    );
    println!(
        "   impulse rewards    : {} per module repair, {} per voter repair",
        config.module_repair_impulse, config.voter_repair_impulse
    );
    println!();
}

fn print_tmr_until(rows: &[tables::TmrUntilRow], title: &str) {
    println!("== {title} ==");
    println!("   formula: P(>0.1)[Sup U[0,t][0,3000] failed], start = all up");
    println!(
        "   {:>5} | {:>8} | {:>22} | {:>14} | {:>9} | {:>10}",
        "t", "w", "P", "E", "time (s)", "nodes"
    );
    for r in rows {
        println!(
            "   {:>5} | {:>8.0e} | {:>22} | {:>14} | {:>9.3} | {:>10}",
            r.t,
            r.w,
            fmt_p(r.probability),
            fmt_e(r.error_bound),
            r.seconds,
            r.explored_nodes
        );
    }
    println!();
}

fn print_modules(rows: &[tables::ModulesRow], title: &str) {
    println!("== {title} ==");
    println!("   formula: P(>0.1)[TT U[0,100][0,2000] allUp], w = 1e-8");
    println!(
        "   {:>3} | {:>22} | {:>14} | {:>9}",
        "n", "P", "E", "time (s)"
    );
    for r in rows {
        println!(
            "   {:>3} | {:>22} | {:>14} | {:>9.3}",
            r.n,
            fmt_p(r.probability),
            fmt_e(r.error_bound),
            r.seconds
        );
    }
    println!();
}

fn print_table_5_8() {
    println!("== Table 5.8: Results by Discretization (TMR, d = 0.25) ==");
    let rows = tables::table_5_8(&[50.0, 100.0, 150.0, 200.0], 0.25);
    println!(
        "   {:>5} | {:>22} | {:>9} | {:>7}",
        "t", "P", "time (s)", "steps"
    );
    for r in &rows {
        println!(
            "   {:>5} | {:>22} | {:>9.3} | {:>7}",
            r.t,
            fmt_p(r.probability),
            r.seconds,
            r.time_steps
        );
    }
    println!();
}

fn write_csv(
    path: &PathBuf,
    header: &str,
    rows: impl Iterator<Item = String>,
) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{header}")?;
    for row in rows {
        writeln!(f, "{row}")?;
    }
    Ok(())
}

fn figures(out_dir: &PathBuf) -> std::io::Result<()> {
    std::fs::create_dir_all(out_dir)?;

    // Figure 5.3: T vs t and E vs t at constant w = 1e-11.
    let ts: Vec<f64> = (1..=10).map(|k| 50.0 * k as f64).collect();
    let rows = tables::table_5_3(&ts, 1e-11);
    write_csv(
        &out_dir.join("figure_5_3.csv"),
        "t,probability,error_bound,seconds,explored_nodes",
        rows.iter().map(|r| {
            format!(
                "{},{},{},{},{}",
                r.t, r.probability, r.error_bound, r.seconds, r.explored_nodes
            )
        }),
    )?;
    println!("wrote {}", out_dir.join("figure_5_3.csv").display());

    // Figure 5.4: P and T vs n, constant failure rates.
    let rows = tables::table_5_5(1e-8);
    write_csv(
        &out_dir.join("figure_5_4.csv"),
        "n,probability,error_bound,seconds",
        rows.iter()
            .map(|r| format!("{},{},{},{}", r.n, r.probability, r.error_bound, r.seconds)),
    )?;
    println!("wrote {}", out_dir.join("figure_5_4.csv").display());

    // Figure 5.5: P and T vs n, variable failure rates.
    let rows = tables::table_5_7(1e-8);
    write_csv(
        &out_dir.join("figure_5_5.csv"),
        "n,probability,error_bound,seconds",
        rows.iter()
            .map(|r| format!("{},{},{},{}", r.n, r.probability, r.error_bound, r.seconds)),
    )?;
    println!("wrote {}", out_dir.join("figure_5_5.csv").display());
    Ok(())
}

/// Cross-check the three engines on the TMR dependability query at a few
/// mission times.
fn validate() {
    println!("== Engine validation: P[Sup U[0,t][0,3000] failed] on TMR(3) ==");
    println!(
        "   {:>5} | {:>16} | {:>16} | {:>22} | {:>8}",
        "t", "uniformization", "discretization", "simulation (±σ)", "agree"
    );
    let config = TmrConfig::classic();
    let m = tmr(&config);
    let (phi, psi) = tables::tmr_dependability_sets(&m);
    let lambda = tables::thesis_lambda(&m, &phi, &psi);
    let start = config.state_with_working(config.modules);

    let mut all_ok = true;
    for t in [50.0, 100.0, 200.0] {
        let (uni, _) = timed(|| {
            uniformization::until_probability(
                &m,
                &phi,
                &psi,
                t,
                3000.0,
                start,
                UniformOptions::new()
                    .with_truncation(1e-11)
                    .with_lambda(lambda),
            )
            .expect("uniformization succeeds")
        });
        let (disc, _) = timed(|| {
            discretization::until_probability(
                &m,
                &phi,
                &psi,
                t,
                3000.0,
                start,
                DiscretizationOptions::with_step(0.25),
            )
            .expect("discretization succeeds")
        });
        let (sim, _) = timed(|| {
            estimate_until(
                &m,
                &phi,
                &psi,
                t,
                3000.0,
                start,
                SimulationOptions::with_samples(200_000),
            )
            .expect("simulation succeeds")
        });
        let ok = (uni.probability - disc.probability).abs() < 1e-3
            && sim.is_consistent_with(uni.probability, 4.0);
        all_ok &= ok;
        println!(
            "   {:>5} | {:>16.12} | {:>16.12} | {:>14.9} ±{:>7.1e} | {:>8}",
            t,
            uni.probability,
            disc.probability,
            sim.mean,
            sim.std_error,
            if ok { "yes" } else { "NO" }
        );
    }
    println!(
        "   => {}",
        if all_ok {
            "all three engines agree"
        } else {
            "DISAGREEMENT DETECTED"
        }
    );
    println!();
}

/// Beyond-paper artifacts: the WaveLAN performability CDF series and the
/// queue cost analysis (written as CSVs next to the figure data).
fn extension(out_dir: &PathBuf) -> std::io::Result<()> {
    std::fs::create_dir_all(out_dir)?;

    // Pr{Y(0.2h) ≤ r} for the WaveLAN modem from the sleep state — the
    // performability measure of Definition 3.4 as a CDF series.
    let m = wavelan::wavelan();
    let opts = UniformOptions::new().with_truncation(1e-7);
    let rs: Vec<f64> = (0..=20).map(|k| 25.0 * f64::from(k)).collect();
    let mut rows = Vec::new();
    for &r in &rs {
        let res = mrmc_numerics::uniformization::performability(&m, 0.2, r, 1, opts)
            .expect("performability succeeds");
        rows.push(format!("{r},{},{}", res.probability, res.error_bound));
    }
    write_csv(
        &out_dir.join("wavelan_performability_cdf.csv"),
        "r_mWh,probability,error_bound",
        rows.into_iter(),
    )?;
    println!(
        "wrote {}",
        out_dir.join("wavelan_performability_cdf.csv").display()
    );

    // Expected accumulated cost of the breakdown queue over a day.
    let config = QueueConfig::new(5);
    let qm = queue(&config);
    let mut rows = Vec::new();
    for k in 1..=24 {
        let t = f64::from(k);
        let e = mrmc_numerics::expected::expected_accumulated_reward_from(
            &qm,
            config.up_state(0),
            t,
            1e-10,
        )
        .expect("expected reward succeeds");
        rows.push(format!("{t},{e}"));
    }
    write_csv(
        &out_dir.join("queue_expected_cost.csv"),
        "t_hours,expected_cost",
        rows.into_iter(),
    )?;
    println!(
        "wrote {}",
        out_dir.join("queue_expected_cost.csv").display()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut out_dir = PathBuf::from("experiments-out");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--out" {
            match it.next() {
                Some(d) => out_dir = PathBuf::from(d),
                None => {
                    eprintln!("--out needs a directory");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            which.push(a.clone());
        }
    }
    if which.is_empty() {
        which.push("all".to_string());
    }

    let ts_full: Vec<f64> = (1..=10).map(|k| 50.0 * k as f64).collect();
    for w in &which {
        match w.as_str() {
            "all" => {
                print_table_5_1();
                print_rates(&TmrConfig::classic(), "Table 5.2: Rates of the TMR Model");
                print_tmr_until(
                    &tables::table_5_3(&ts_full, 1e-11),
                    "Table 5.3: Maintaining Constant Value for Truncation Probability (w = 1e-11)",
                );
                print_tmr_until(
                    &tables::table_5_4(&tables::table_5_4_schedule()),
                    "Table 5.4: Maintaining Error Bound (E < 1e-4)",
                );
                print_modules(
                    &tables::table_5_5(1e-8),
                    "Table 5.5: Reaching the Fully Operational State (constant failure rates)",
                );
                print_rates(
                    &TmrConfig::with_modules(11).variable(),
                    "Table 5.6: Variable Rates",
                );
                print_modules(
                    &tables::table_5_7(1e-8),
                    "Table 5.7: Reaching the Fully Operational State (variable failure rates)",
                );
                print_table_5_8();
                if let Err(e) = figures(&out_dir) {
                    eprintln!("failed to write figure CSVs: {e}");
                    return ExitCode::FAILURE;
                }
            }
            "table5.1" => print_table_5_1(),
            "table5.2" => print_rates(&TmrConfig::classic(), "Table 5.2: Rates of the TMR Model"),
            "table5.3" => print_tmr_until(
                &tables::table_5_3(&ts_full, 1e-11),
                "Table 5.3: Maintaining Constant Value for Truncation Probability (w = 1e-11)",
            ),
            "table5.4" => print_tmr_until(
                &tables::table_5_4(&tables::table_5_4_schedule()),
                "Table 5.4: Maintaining Error Bound (E < 1e-4)",
            ),
            "table5.5" => print_modules(
                &tables::table_5_5(1e-8),
                "Table 5.5: Reaching the Fully Operational State (constant failure rates)",
            ),
            "table5.6" => print_rates(
                &TmrConfig::with_modules(11).variable(),
                "Table 5.6: Variable Rates",
            ),
            "table5.7" => print_modules(
                &tables::table_5_7(1e-8),
                "Table 5.7: Reaching the Fully Operational State (variable failure rates)",
            ),
            "table5.8" => print_table_5_8(),
            "validate" => validate(),
            "extension" => {
                if let Err(e) = extension(&out_dir) {
                    eprintln!("failed to write extension CSVs: {e}");
                    return ExitCode::FAILURE;
                }
            }
            "figures" => {
                if let Err(e) = figures(&out_dir) {
                    eprintln!("failed to write figure CSVs: {e}");
                    return ExitCode::FAILURE;
                }
            }
            other => {
                eprintln!("unknown experiment `{other}`");
                eprintln!("known: all, table5.1 .. table5.8, figures, validate, extension");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
