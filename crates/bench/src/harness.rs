//! A tiny in-tree micro-benchmark harness with a `criterion`-shaped API.
//!
//! The workspace must build with no network access, so the external
//! `criterion` crate is unavailable. This module provides the subset of its
//! surface the `benches/` files use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`] / [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`] / [`BenchmarkGroup::finish`],
//! [`BenchmarkId`], [`Bencher::iter`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros — so a bench file ports by swapping its
//! import line only.
//!
//! Measurement model: after a short calibration run that picks an
//! iteration count filling roughly [`Criterion::target_sample_time`], each
//! benchmark takes `sample_size` timed samples and reports the minimum,
//! median, and mean per-iteration wall time. No statistics beyond that —
//! this harness exists to print honest numbers offline, not to replace a
//! statistics engine.
//!
//! [`criterion_group!`]: crate::criterion_group
//! [`criterion_main!`]: crate::criterion_main

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
///
/// Re-exported under criterion's name so bench code reads identically.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver; one per bench binary.
#[derive(Debug, Clone)]
pub struct Criterion {
    default_sample_size: usize,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            target_sample_time: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Wall time each calibrated sample should roughly occupy.
    pub fn target_sample_time(&self) -> Duration {
        self.target_sample_time
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            target_sample_time: self.target_sample_time,
        }
    }
}

/// A two-part benchmark identifier: function name plus parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// A named collection of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    target_sample_time: Duration,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark (minimum 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark under this group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size, self.target_sample_time);
        f(&mut b);
        b.report(&self.name, &id.to_string());
        self
    }

    /// Run one parameterized benchmark under this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size, self.target_sample_time);
        f(&mut b, input);
        b.report(&self.name, &id.to_string());
        self
    }

    /// End the group (kept for criterion API parity; reporting is eager).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] does the timing.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    target_sample_time: Duration,
    /// Per-iteration seconds, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize, target_sample_time: Duration) -> Self {
        Bencher {
            sample_size,
            target_sample_time,
            samples: Vec::new(),
        }
    }

    /// Measure `f`, storing per-iteration times for the final report.
    ///
    /// One calibration pass times a single iteration and derives how many
    /// iterations fill the target sample time; each of the `sample_size`
    /// samples then runs that many iterations.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Calibration: one warm-up iteration, also priming caches.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().as_secs_f64().max(1e-9);
        let per_sample = (self.target_sample_time.as_secs_f64() / once).clamp(1.0, 1e6) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / per_sample as f64);
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            eprintln!("{group}/{id}: no samples (closure never called iter)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        eprintln!(
            "{group}/{id}: min {} | median {} | mean {} ({} samples)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            sorted.len()
        );
    }

    /// Minimum per-iteration seconds across samples (for speedup reports).
    pub fn min_sample(&self) -> Option<f64> {
        self.samples
            .iter()
            .copied()
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }
}

/// Render seconds with a human-appropriate unit.
pub fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundle benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Produce a `main` that runs each group, mirroring criterion's macro of
/// the same name.
///
/// Cargo passes `--bench`/`--test` style flags to bench binaries with
/// `harness = false`; they are accepted and ignored, except `--list`,
/// which prints nothing and exits (so `cargo test --benches` stays quiet).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--list") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher::new(5, Duration::from_millis(1));
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert_eq!(b.samples.len(), 5);
        assert!(b.samples.iter().all(|&s| s >= 0.0));
        assert!(b.min_sample().is_some());
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("harness_selftest");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3, |b, &x| {
            b.iter(|| x * 2);
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn id_formats_with_slash() {
        assert_eq!(BenchmarkId::new("omega", 17).to_string(), "omega/17");
    }

    #[test]
    fn time_formatting_picks_units() {
        assert_eq!(fmt_time(2.0), "2.000 s");
        assert_eq!(fmt_time(2e-3), "2.000 ms");
        assert_eq!(fmt_time(2e-6), "2.000 µs");
        assert_eq!(fmt_time(2e-9), "2.0 ns");
    }
}
