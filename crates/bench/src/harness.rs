//! A tiny in-tree micro-benchmark harness with a `criterion`-shaped API.
//!
//! The workspace must build with no network access, so the external
//! `criterion` crate is unavailable. This module provides the subset of its
//! surface the `benches/` files use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`] / [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`] / [`BenchmarkGroup::finish`],
//! [`BenchmarkId`], [`Bencher::iter`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros — so a bench file ports by swapping its
//! import line only.
//!
//! Measurement model: after a short calibration run that picks an
//! iteration count filling roughly [`Criterion::target_sample_time`], each
//! benchmark takes `sample_size` timed samples and reports the minimum,
//! median, and mean per-iteration wall time. No statistics beyond that —
//! this harness exists to print honest numbers offline, not to replace a
//! statistics engine.
//!
//! # Perf snapshots
//!
//! Unless disabled with [`Criterion::without_snapshots`],
//! [`BenchmarkGroup::finish`] writes a machine-readable snapshot of the
//! group's results to `BENCH_<group>.json` at the repository root (the
//! group name is sanitized to `[A-Za-z0-9_-]`). The schema is one JSON
//! object per file:
//!
//! ```text
//! {
//!   "group": "<group name>",
//!   "benchmarks": [
//!     {
//!       "id": "<bench id>",          // e.g. "omega/17"
//!       "samples": <int>,            // timed samples taken
//!       "min_s": <float>,            // per-iteration wall seconds
//!       "median_s": <float>,
//!       "mean_s": <float>,
//!       "metrics": { ... } | null    // mrmc-obs RunMetrics JSON
//!     }, ...
//!   ]
//! }
//! ```
//!
//! `metrics` is the work-counter snapshot (paths generated, solver sweeps,
//! grid cells, …) captured by running the *calibration* iteration under a
//! [`MetricsRecorder`]; it is `null` when the
//! benchmark body emitted no telemetry events. The timed samples
//! themselves run with no recorder installed, so snapshotting never adds
//! overhead to the reported numbers.
//!
//! [`criterion_group!`]: crate::criterion_group
//! [`criterion_main!`]: crate::criterion_main

use std::fmt;
use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mrmc_obs::{MetricsRecorder, RunMetrics};

/// Prevent the optimizer from deleting a benchmarked computation.
///
/// Re-exported under criterion's name so bench code reads identically.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver; one per bench binary.
#[derive(Debug, Clone)]
pub struct Criterion {
    default_sample_size: usize,
    target_sample_time: Duration,
    snapshots: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            target_sample_time: Duration::from_millis(50),
            snapshots: true,
        }
    }
}

impl Criterion {
    /// Wall time each calibrated sample should roughly occupy.
    pub fn target_sample_time(&self) -> Duration {
        self.target_sample_time
    }

    /// Do not write `BENCH_<group>.json` snapshot files (used by the
    /// harness's own unit tests).
    #[must_use]
    pub fn without_snapshots(mut self) -> Self {
        self.snapshots = false;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            target_sample_time: self.target_sample_time,
            snapshots: self.snapshots,
            results: Vec::new(),
        }
    }
}

/// A two-part benchmark identifier: function name plus parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// One finished benchmark's numbers, as persisted in the snapshot file.
#[derive(Debug, Clone)]
struct BenchResult {
    id: String,
    samples: usize,
    min: f64,
    median: f64,
    mean: f64,
    metrics: Option<RunMetrics>,
}

/// A named collection of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    target_sample_time: Duration,
    snapshots: bool,
    results: Vec<BenchResult>,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark (minimum 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark under this group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size, self.target_sample_time);
        f(&mut b);
        b.report(&self.name, &id.to_string());
        if let Some(r) = b.into_result(id.to_string()) {
            self.results.push(r);
        }
        self
    }

    /// Run one parameterized benchmark under this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size, self.target_sample_time);
        f(&mut b, input);
        b.report(&self.name, &id.to_string());
        if let Some(r) = b.into_result(id.to_string()) {
            self.results.push(r);
        }
        self
    }

    /// End the group. Console reporting is eager (criterion API parity);
    /// this additionally persists the snapshot file (see the module docs)
    /// unless snapshots are disabled or the group ran nothing.
    pub fn finish(&mut self) {
        if !self.snapshots || self.results.is_empty() {
            return;
        }
        let path = snapshot_path(&self.name);
        match std::fs::write(&path, self.render_json()) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }

    fn render_json(&self) -> String {
        let mut s = String::from("{\"group\":\"");
        push_escaped(&mut s, &self.name);
        s.push_str("\",\"benchmarks\":[");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"id\":\"");
            push_escaped(&mut s, &r.id);
            write!(
                s,
                "\",\"samples\":{},\"min_s\":{:e},\"median_s\":{:e},\"mean_s\":{:e},\"metrics\":",
                r.samples, r.min, r.median, r.mean
            )
            .unwrap();
            match &r.metrics {
                Some(m) => s.push_str(&m.to_json()),
                None => s.push_str("null"),
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

/// `BENCH_<group>.json` at the repository root, with the group name
/// restricted to filename-safe characters.
fn snapshot_path(group: &str) -> PathBuf {
    let sanitized: String = group
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(format!("BENCH_{sanitized}.json"))
}

/// Minimal JSON string escaping for names and ids.
fn push_escaped(s: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                write!(s, "\\u{:04x}", c as u32).unwrap();
            }
            c => s.push(c),
        }
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] does the timing.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    target_sample_time: Duration,
    /// Per-iteration seconds, one entry per sample.
    samples: Vec<f64>,
    /// Work counters captured during the calibration iteration, when the
    /// benchmark body emitted any telemetry events.
    metrics: Option<RunMetrics>,
}

impl Bencher {
    fn new(sample_size: usize, target_sample_time: Duration) -> Self {
        Bencher {
            sample_size,
            target_sample_time,
            samples: Vec::new(),
            metrics: None,
        }
    }

    /// Measure `f`, storing per-iteration times for the final report.
    ///
    /// One calibration pass times a single iteration and derives how many
    /// iterations fill the target sample time; each of the `sample_size`
    /// samples then runs that many iterations. The calibration iteration
    /// runs under a [`MetricsRecorder`] so the snapshot file can report
    /// the work the benchmark does (paths, sweeps, grid cells); the timed
    /// samples run with no recorder installed.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Calibration: one warm-up iteration, also priming caches.
        let recorder = Arc::new(MetricsRecorder::new());
        let once = mrmc_obs::with_recorder(recorder.clone(), || {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64().max(1e-9)
        });
        let captured = recorder.take();
        self.metrics = (captured != RunMetrics::default()).then_some(captured);
        let per_sample = (self.target_sample_time.as_secs_f64() / once).clamp(1.0, 1e6) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / per_sample as f64);
        }
    }

    /// Package the collected samples for the snapshot file; `None` when
    /// the closure never called [`iter`](Self::iter).
    fn into_result(self, id: String) -> Option<BenchResult> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Some(BenchResult {
            id,
            samples: sorted.len(),
            min: sorted[0],
            median: sorted[sorted.len() / 2],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            metrics: self.metrics,
        })
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            eprintln!("{group}/{id}: no samples (closure never called iter)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        eprintln!(
            "{group}/{id}: min {} | median {} | mean {} ({} samples)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            sorted.len()
        );
    }

    /// Minimum per-iteration seconds across samples (for speedup reports).
    pub fn min_sample(&self) -> Option<f64> {
        self.samples
            .iter()
            .copied()
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }
}

/// Render seconds with a human-appropriate unit.
pub fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundle benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Produce a `main` that runs each group, mirroring criterion's macro of
/// the same name.
///
/// Cargo passes `--bench`/`--test` style flags to bench binaries with
/// `harness = false`; they are accepted and ignored, except `--list`,
/// which prints nothing and exits (so `cargo test --benches` stays quiet).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--list") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher::new(5, Duration::from_millis(1));
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert_eq!(b.samples.len(), 5);
        assert!(b.samples.iter().all(|&s| s >= 0.0));
        assert!(b.min_sample().is_some());
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default().without_snapshots();
        let mut group = c.benchmark_group("harness_selftest");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3, |b, &x| {
            b.iter(|| x * 2);
        });
        group.finish();
        assert!(ran);
        assert_eq!(group.results.len(), 2);
        assert_eq!(group.results[0].id, "noop");
        assert_eq!(group.results[1].id, "with_input/3");
    }

    #[test]
    fn snapshot_json_has_the_documented_shape() {
        let mut c = Criterion::default().without_snapshots();
        let mut group = c.benchmark_group("shape");
        group.sample_size(2);
        group.bench_function("fast", |b| b.iter(|| 2 + 2));
        let json = group.render_json();
        assert!(json.starts_with("{\"group\":\"shape\",\"benchmarks\":["));
        for key in [
            "\"id\":\"fast\"",
            "\"samples\":2",
            "\"min_s\":",
            "\"median_s\":",
            "\"mean_s\":",
            "\"metrics\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // No telemetry emitted by `2 + 2`: metrics must be null.
        assert!(json.contains("\"metrics\":null"), "{json}");
    }

    #[test]
    fn calibration_captures_metrics_when_events_flow() {
        let mut b = Bencher::new(2, Duration::from_millis(1));
        b.iter(|| {
            mrmc_obs::record(|| mrmc_obs::Event::Counter {
                name: "bench_work",
                value: 7,
            });
        });
        let m = b.metrics.as_ref().expect("calibration metrics captured");
        assert_eq!(m.counters["bench_work"], 7);
        let r = b.into_result("instrumented".into()).unwrap();
        assert!(r.metrics.is_some());
    }

    #[test]
    fn snapshot_paths_are_sanitized_and_rooted() {
        let p = snapshot_path("omega table/serial");
        let name = p.file_name().unwrap().to_str().unwrap();
        assert_eq!(name, "BENCH_omega_table_serial.json");
        assert!(p.ends_with(format!("../../{name}")));
    }

    #[test]
    fn id_formats_with_slash() {
        assert_eq!(BenchmarkId::new("omega", 17).to_string(), "omega/17");
    }

    #[test]
    fn time_formatting_picks_units() {
        assert_eq!(fmt_time(2.0), "2.000 s");
        assert_eq!(fmt_time(2e-3), "2.000 ms");
        assert_eq!(fmt_time(2e-6), "2.000 µs");
        assert_eq!(fmt_time(2e-9), "2.0 ns");
    }
}
