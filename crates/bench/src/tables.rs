//! One function per table of the evaluation chapter.

use mrmc_models::phone;
use mrmc_models::tmr::{tmr, TmrConfig};
use mrmc_mrm::{transform::make_absorbing, Mrm};
use mrmc_numerics::discretization::{self, DiscretizationOptions};
use mrmc_numerics::uniformization::{self, UniformOptions};

use crate::timed;

/// The thesis' uniformization-rate choice: `Λ = max_s E(s)` over the
/// *absorbed* model (no slack). This choice is what makes the constant-`w`
/// degradation of Table 5.3 reproducible: at `t = 500`,
/// `e^{−Λt} ≈ 1.19e-11` barely survives `w = 1e-11`.
pub fn thesis_lambda(mrm: &Mrm, phi: &[bool], psi: &[bool]) -> f64 {
    let absorb: Vec<bool> = phi.iter().zip(psi).map(|(&p, &q)| !p || q).collect();
    let absorbed = make_absorbing(mrm, &absorb).expect("valid absorb set");
    absorbed
        .ctmc()
        .exit_rates()
        .iter()
        .fold(0.0_f64, |m, &e| m.max(e))
        .max(f64::MIN_POSITIVE)
}

/// The Φ/Ψ sets of the TMR dependability formula
/// `P(>0.1)[Sup U[0,t][0,3000] failed]`.
pub fn tmr_dependability_sets(mrm: &Mrm) -> (Vec<bool>, Vec<bool>) {
    (
        mrm.labeling().states_with("Sup"),
        mrm.labeling().states_with("failed"),
    )
}

// ------------------------------------------------------------------
// Table 5.1 — results without impulse rewards (phone model, [Hav02]).
// ------------------------------------------------------------------

/// One row of Table 5.1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table51Row {
    /// Discretization step `d`.
    pub d: f64,
    /// `Pr{Y(24) ≤ 600, X(24) ⊨ Call_Initiated}`.
    pub probability: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
}

/// The full Table 5.1 experiment: a uniformization reference value plus one
/// discretization row per step size.
#[derive(Debug, Clone, PartialEq)]
pub struct Table51 {
    /// Reference value (uniformization at tight truncation, standing in
    /// for the thesis' external reference 0.49540399).
    pub reference: f64,
    /// Error bound of the reference computation.
    pub reference_error: f64,
    /// Discretization rows for `d ∈ {1/16, 1/32, 1/64}`.
    pub rows: Vec<Table51Row>,
}

/// Run the Table 5.1 experiment:
/// `P(>0.5)[(Call_Idle || Doze) U[0,24][0,600] Call_Initiated]` on the
/// phone model (state rewards only), by discretization with halving `d`.
pub fn table_5_1(steps: &[f64]) -> Table51 {
    let m = phone::phone();
    let phi: Vec<bool> = (0..m.num_states())
        .map(|s| m.labeling().has(s, "Call_Idle") || m.labeling().has(s, "Doze"))
        .collect();
    let psi = m.labeling().states_with("Call_Initiated");
    let (t, r, start) = (24.0, 600.0, phone::DOZE);

    let lambda = thesis_lambda(&m, &phi, &psi);
    let reference = uniformization::until_probability(
        &m,
        &phi,
        &psi,
        t,
        r,
        start,
        UniformOptions::new()
            .with_truncation(1e-11)
            .with_lambda(lambda)
            .with_improved_pruning(),
    )
    .expect("reference computation succeeds");

    let rows = steps
        .iter()
        .map(|&d| {
            let (res, seconds) = timed(|| {
                discretization::until_probability(
                    &m,
                    &phi,
                    &psi,
                    t,
                    r,
                    start,
                    DiscretizationOptions::with_step(d),
                )
                .expect("discretization succeeds")
            });
            Table51Row {
                d,
                probability: res.probability,
                seconds,
            }
        })
        .collect();

    Table51 {
        reference: reference.probability,
        reference_error: reference.error_bound,
        rows,
    }
}

// ------------------------------------------------------------------
// Tables 5.3/5.4 + Figure 5.3 — TMR(3), P(>0.1)[Sup U[0,t][0,3000] failed].
// ------------------------------------------------------------------

/// One row of Table 5.3 or 5.4.
#[derive(Debug, Clone, PartialEq)]
pub struct TmrUntilRow {
    /// Mission time `t`.
    pub t: f64,
    /// Truncation probability `w` used.
    pub w: f64,
    /// Computed probability `P`.
    pub probability: f64,
    /// Error bound `E` (Eq. 4.6).
    pub error_bound: f64,
    /// Wall-clock seconds `T`.
    pub seconds: f64,
    /// DFS nodes explored (extra diagnostic, not in the thesis table).
    pub explored_nodes: u64,
}

/// Evaluate the TMR dependability formula from the fully-operational state
/// for one `(t, w)` pair.
pub fn tmr_until_row(mrm: &Mrm, config: &TmrConfig, t: f64, w: f64) -> TmrUntilRow {
    let (phi, psi) = tmr_dependability_sets(mrm);
    let lambda = thesis_lambda(mrm, &phi, &psi);
    let start = config.state_with_working(config.modules);
    let (res, seconds) = timed(|| {
        uniformization::until_probability(
            mrm,
            &phi,
            &psi,
            t,
            3000.0,
            start,
            UniformOptions::new().with_truncation(w).with_lambda(lambda),
        )
        .expect("uniformization succeeds")
    });
    TmrUntilRow {
        t,
        w,
        probability: res.probability,
        error_bound: res.error_bound,
        seconds,
        explored_nodes: res.explored_nodes,
    }
}

/// Table 5.3 (and the Figure 5.3 series): constant `w = 1e-11`,
/// `t ∈ {50, 100, …, 500}`.
pub fn table_5_3(ts: &[f64], w: f64) -> Vec<TmrUntilRow> {
    let config = TmrConfig::classic();
    let m = tmr(&config);
    ts.iter()
        .map(|&t| tmr_until_row(&m, &config, t, w))
        .collect()
}

/// The `(t, w)` schedule of Table 5.4 (maintaining `E < 1e-4`).
pub fn table_5_4_schedule() -> Vec<(f64, f64)> {
    vec![
        (50.0, 1e-6),
        (100.0, 1e-7),
        (150.0, 1e-7),
        (200.0, 1e-8),
        (250.0, 1e-8),
        (300.0, 1e-9),
        (350.0, 1e-10),
        (400.0, 1e-11),
        (450.0, 1e-12),
        (500.0, 1e-13),
    ]
}

/// Table 5.4: per-`t` truncation probabilities chosen to keep the error
/// bound below `1e-4`.
pub fn table_5_4(schedule: &[(f64, f64)]) -> Vec<TmrUntilRow> {
    let config = TmrConfig::classic();
    let m = tmr(&config);
    schedule
        .iter()
        .map(|&(t, w)| tmr_until_row(&m, &config, t, w))
        .collect()
}

// ------------------------------------------------------------------
// Tables 5.5/5.7 + Figures 5.4/5.5 — reaching the fully operational state.
// ------------------------------------------------------------------

/// One row of Table 5.5 / 5.7.
#[derive(Debug, Clone, PartialEq)]
pub struct ModulesRow {
    /// Number of working modules in the starting state.
    pub n: usize,
    /// Computed probability `P`.
    pub probability: f64,
    /// Error bound `E`.
    pub error_bound: f64,
    /// Wall-clock seconds `T`.
    pub seconds: f64,
}

/// Shared implementation of Tables 5.5 and 5.7:
/// `P(>0.1)[tt U[0,100][0,2000] allUp]` on an 11-module system, starting
/// from `n ∈ 0..=10` working modules, `w = 1e-8`.
fn reach_full_operation(config: &TmrConfig, w: f64) -> Vec<ModulesRow> {
    let m = tmr(config);
    let phi = vec![true; m.num_states()];
    let psi = m.labeling().states_with("allUp");
    let lambda = thesis_lambda(&m, &phi, &psi);
    (0..config.modules)
        .map(|n| {
            let start = config.state_with_working(n);
            let (res, seconds) = timed(|| {
                uniformization::until_probability(
                    &m,
                    &phi,
                    &psi,
                    100.0,
                    2000.0,
                    start,
                    UniformOptions::new().with_truncation(w).with_lambda(lambda),
                )
                .expect("uniformization succeeds")
            });
            ModulesRow {
                n,
                probability: res.probability,
                error_bound: res.error_bound,
                seconds,
            }
        })
        .collect()
}

/// Table 5.5 (and the Figure 5.4 series): constant failure rates.
pub fn table_5_5(w: f64) -> Vec<ModulesRow> {
    reach_full_operation(&TmrConfig::with_modules(11), w)
}

/// Table 5.7 (and the Figure 5.5 series): variable failure rates
/// (Table 5.6 parameters).
pub fn table_5_7(w: f64) -> Vec<ModulesRow> {
    reach_full_operation(&TmrConfig::with_modules(11).variable(), w)
}

// ------------------------------------------------------------------
// Table 5.8 — discretization on the TMR model.
// ------------------------------------------------------------------

/// One row of Table 5.8.
#[derive(Debug, Clone, PartialEq)]
pub struct Table58Row {
    /// Mission time `t`.
    pub t: f64,
    /// Computed probability `P`.
    pub probability: f64,
    /// Wall-clock seconds `T`.
    pub seconds: f64,
    /// Number of time steps performed.
    pub time_steps: usize,
}

/// Table 5.8: the Table 5.3 formula evaluated by discretization with
/// `d = 0.25`, `t ∈ {50, 100, 150, 200}`.
pub fn table_5_8(ts: &[f64], d: f64) -> Vec<Table58Row> {
    let config = TmrConfig::classic();
    let m = tmr(&config);
    let (phi, psi) = tmr_dependability_sets(&m);
    let start = config.state_with_working(config.modules);
    ts.iter()
        .map(|&t| {
            let (res, seconds) = timed(|| {
                discretization::until_probability(
                    &m,
                    &phi,
                    &psi,
                    t,
                    3000.0,
                    start,
                    DiscretizationOptions::with_step(d),
                )
                .expect("discretization succeeds")
            });
            Table58Row {
                t,
                probability: res.probability,
                seconds,
                time_steps: res.time_steps,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thesis_lambda_matches_the_tmr_hand_computation() {
        let config = TmrConfig::classic();
        let m = tmr(&config);
        let (phi, psi) = tmr_dependability_sets(&m);
        // Absorbed model keeps only Sup-states 2up/3up active:
        // E(2up) = 0.0004 + 0.05 + 0.0001 = 0.0505.
        let lambda = thesis_lambda(&m, &phi, &psi);
        assert!((lambda - 0.0505).abs() < 1e-12);
    }

    #[test]
    fn table_5_3_shape_small() {
        // Three points are enough to verify growth in t and error growth.
        let rows = table_5_3(&[50.0, 100.0, 150.0], 1e-11);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].probability < rows[1].probability);
        assert!(rows[1].probability < rows[2].probability);
        assert!(rows[0].error_bound <= rows[2].error_bound * 10.0);
        // Paper's order of magnitude at t = 50: 0.005087.
        assert!(
            (rows[0].probability - 0.005).abs() < 0.002,
            "P(50) = {}",
            rows[0].probability
        );
    }

    #[test]
    fn table_5_4_keeps_error_small() {
        let rows = table_5_4(&[(50.0, 1e-6), (100.0, 1e-7)]);
        for row in rows {
            assert!(
                row.error_bound < 1e-4,
                "t = {}: E = {}",
                row.t,
                row.error_bound
            );
        }
    }

    #[test]
    fn table_5_5_is_monotone_in_n() {
        let rows = table_5_5(1e-8);
        assert_eq!(rows.len(), 11);
        for pair in rows.windows(2) {
            assert!(
                pair[0].probability <= pair[1].probability + 1e-9,
                "n = {}: {} > {}",
                pair[0].n,
                pair[0].probability,
                pair[1].probability
            );
        }
        // Near-certain from n = 10, tiny from n = 0.
        assert!(rows[10].probability > 0.9);
        assert!(rows[0].probability < 0.1);
    }

    #[test]
    fn table_5_7_is_dominated_by_table_5_5() {
        // Variable failure rates are higher, so reaching full operation is
        // less likely for every starting state.
        let constant = table_5_5(1e-8);
        let variable = table_5_7(1e-8);
        for (c, v) in constant.iter().zip(&variable) {
            assert!(
                v.probability <= c.probability + 1e-6,
                "n = {}: variable {} > constant {}",
                c.n,
                v.probability,
                c.probability
            );
        }
    }

    #[test]
    fn table_5_8_agrees_with_uniformization() {
        let disc = table_5_8(&[50.0, 100.0], 0.25);
        let uni = table_5_3(&[50.0, 100.0], 1e-11);
        for (d, u) in disc.iter().zip(&uni) {
            assert!(
                (d.probability - u.probability).abs() < 5e-3,
                "t = {}: disc {} vs uni {}",
                d.t,
                d.probability,
                u.probability
            );
        }
    }

    #[test]
    fn table_5_1_converges() {
        let out = table_5_1(&[1.0 / 16.0, 1.0 / 32.0]);
        assert_eq!(out.rows.len(), 2);
        let e16 = (out.rows[0].probability - out.reference).abs();
        let e32 = (out.rows[1].probability - out.reference).abs();
        assert!(
            e32 < e16,
            "halving d must shrink the error: {e16} -> {e32} (ref {})",
            out.reference
        );
    }
}
