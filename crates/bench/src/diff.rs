//! The perf-regression sentinel: compare two `BENCH_<group>.json`
//! snapshots (see [`crate::harness`] for the schema) and classify each
//! benchmark as unchanged, improved, or regressed.
//!
//! Wall-time comparisons are noise-aware on two axes:
//!
//! * **median-ratio tolerance** — a benchmark regresses only when
//!   `snapshot_median / baseline_median` exceeds
//!   [`DiffOptions::max_ratio`] (and improves only when it drops below
//!   the reciprocal);
//! * **absolute slack** — medians whose difference is below
//!   [`DiffOptions::min_delta_s`] never regress, because sub-microsecond
//!   micro-benchmarks routinely jitter by more than any useful ratio.
//!
//! Work counters carry no timing noise, so they are held to a **hard
//! equality check**: every integer-valued field of the `metrics` object
//! (solver sweeps, paths generated, grid cells, …) and every entry of its
//! nested `counters` map must match exactly. A counter drift with a flat
//! median is how an optimization quietly stops applying — the sentinel
//! treats it as seriously as a slowdown. The wall-time-valued members
//! (`phases`, the float-valued accuracy fields) and the throttle-dependent
//! `progress_events` are exempt.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use mrmc_obs::json::{self, Value};

use crate::harness::fmt_time;

/// Tolerances for [`diff`]; `Default` gives the CI gate's settings.
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// A benchmark regresses when `snapshot_median / baseline_median`
    /// exceeds this (and improves below its reciprocal).
    pub max_ratio: f64,
    /// Median differences smaller than this many seconds never count as
    /// regressions, whatever the ratio says.
    pub min_delta_s: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            max_ratio: 1.5,
            min_delta_s: 5e-6,
        }
    }
}

/// What the sentinel concluded about one benchmark id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Median within tolerance, counters identical.
    Ok,
    /// Median faster than the reciprocal tolerance.
    Improved,
    /// Median slower than [`DiffOptions::max_ratio`] allows.
    Regressed,
    /// Work counters drifted (hard check, no tolerance).
    CountersChanged,
    /// Present in the snapshot but not the baseline.
    Added,
    /// Present in the baseline but not the snapshot.
    Removed,
}

impl Status {
    /// Stable lower-case label used by both report formats.
    pub fn label(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Improved => "improved",
            Status::Regressed => "regressed",
            Status::CountersChanged => "counters_changed",
            Status::Added => "added",
            Status::Removed => "removed",
        }
    }

    /// Whether this status fails the gate.
    pub fn is_failure(self) -> bool {
        matches!(self, Status::Regressed | Status::CountersChanged)
    }
}

/// One benchmark's comparison row.
#[derive(Debug, Clone)]
pub struct BenchDelta {
    /// Benchmark id, e.g. `omega/warm_cache/16`.
    pub id: String,
    /// The verdict for this id.
    pub status: Status,
    /// Baseline median seconds (absent for [`Status::Added`]).
    pub baseline_median_s: Option<f64>,
    /// Snapshot median seconds (absent for [`Status::Removed`]).
    pub snapshot_median_s: Option<f64>,
    /// `snapshot / baseline` median ratio when both sides exist.
    pub median_ratio: Option<f64>,
    /// Hard-counter drifts: `(name, baseline, snapshot)`.
    pub counter_changes: Vec<(String, u64, u64)>,
}

/// The full comparison of one snapshot pair.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Group name from the snapshot file.
    pub group: String,
    /// One row per benchmark id, in baseline order then added ids.
    pub deltas: Vec<BenchDelta>,
    /// The tolerances the verdicts were computed under.
    pub options: DiffOptions,
}

impl DiffReport {
    /// Whether any row fails the gate (regression or counter drift).
    pub fn has_regressions(&self) -> bool {
        self.deltas.iter().any(|d| d.status.is_failure())
    }

    /// Human report: a header line plus one aligned row per benchmark.
    pub fn render_human(&self) -> String {
        let failures = self.deltas.iter().filter(|d| d.status.is_failure()).count();
        let mut out = format!(
            "bench diff `{}`: {} benchmarks, {} failing (max ratio {:.2}, slack {})\n",
            self.group,
            self.deltas.len(),
            failures,
            self.options.max_ratio,
            fmt_time(self.options.min_delta_s),
        );
        let width = self
            .deltas
            .iter()
            .map(|d| d.status.label().len())
            .max()
            .unwrap_or(2);
        for d in &self.deltas {
            let _ = write!(out, "  {:width$}  {}", d.status.label(), d.id);
            match (d.baseline_median_s, d.snapshot_median_s) {
                (Some(b), Some(s)) => {
                    let _ = write!(out, ": median {} -> {}", fmt_time(b), fmt_time(s));
                    if let Some(r) = d.median_ratio {
                        let _ = write!(out, " (x{r:.2})");
                    }
                }
                (Some(b), None) => {
                    let _ = write!(out, ": median {} -> (gone)", fmt_time(b));
                }
                (None, Some(s)) => {
                    let _ = write!(out, ": median (new) -> {}", fmt_time(s));
                }
                (None, None) => {}
            }
            out.push('\n');
            for (name, base, snap) in &d.counter_changes {
                let _ = writeln!(out, "{:width$}    counter {name}: {base} -> {snap}", "");
            }
        }
        out
    }

    /// Machine report with a fixed key order:
    /// `{"group":…,"max_ratio":…,"min_delta_s":…,"failing":N,"deltas":[…]}`.
    pub fn render_json(&self) -> String {
        let failures = self.deltas.iter().filter(|d| d.status.is_failure()).count();
        let mut out = String::from("{\"group\":");
        json::push_str(&mut out, &self.group);
        out.push_str(",\"max_ratio\":");
        json::push_f64(&mut out, self.options.max_ratio);
        out.push_str(",\"min_delta_s\":");
        json::push_f64(&mut out, self.options.min_delta_s);
        let _ = write!(out, ",\"failing\":{failures},\"deltas\":[");
        for (i, d) in self.deltas.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":");
            json::push_str(&mut out, &d.id);
            let _ = write!(out, ",\"status\":\"{}\"", d.status.label());
            for (key, v) in [
                ("baseline_median_s", d.baseline_median_s),
                ("snapshot_median_s", d.snapshot_median_s),
                ("median_ratio", d.median_ratio),
            ] {
                let _ = write!(out, ",\"{key}\":");
                match v {
                    Some(v) => json::push_f64(&mut out, v),
                    None => out.push_str("null"),
                }
            }
            out.push_str(",\"counter_changes\":{");
            for (j, (name, base, snap)) in d.counter_changes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json::push_str(&mut out, name);
                let _ = write!(out, ":{{\"baseline\":{base},\"snapshot\":{snap}}}");
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

/// One parsed benchmark entry: medians plus the hard-counter view of its
/// `metrics` object.
struct Entry {
    median_s: f64,
    counters: BTreeMap<String, u64>,
}

/// Counter names exempt from the hard check: `progress_events` depends on
/// the recorder's wall-clock throttle, not on the work done.
const SOFT_COUNTERS: [&str; 1] = ["progress_events"];

/// Flatten a `metrics` object into its hard-checked integer counters.
fn hard_counters(metrics: &Value) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    let Value::Obj(members) = metrics else {
        return out;
    };
    for (name, value) in members {
        if SOFT_COUNTERS.contains(&name.as_str()) {
            continue;
        }
        if name == "counters" {
            if let Value::Obj(inner) = value {
                for (inner_name, v) in inner {
                    if let Some(n) = v.as_u64() {
                        out.insert(format!("counters.{inner_name}"), n);
                    }
                }
            }
            continue;
        }
        // Integer-valued fields are work counters; float-valued fields
        // (residuals, tail bounds) and the `phases` object are timing- or
        // accuracy-shaped and stay out of the hard check.
        if let Some(n) = value.as_u64() {
            out.insert(name.clone(), n);
        }
    }
    out
}

/// Parse one snapshot document into `(group, id -> entry)`.
fn parse_snapshot(text: &str, what: &str) -> Result<(String, Vec<(String, Entry)>), String> {
    let doc = json::parse(text).map_err(|e| format!("{what}: invalid JSON: {e}"))?;
    let group = doc
        .get("group")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{what}: missing `group`"))?
        .to_string();
    let Some(Value::Arr(benchmarks)) = doc.get("benchmarks") else {
        return Err(format!("{what}: missing `benchmarks` array"));
    };
    let mut entries = Vec::new();
    for b in benchmarks {
        let id = b
            .get("id")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{what}: benchmark without `id`"))?
            .to_string();
        let median_s = b
            .get("median_s")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{what}: `{id}` lacks `median_s`"))?;
        let counters = b.get("metrics").map(hard_counters).unwrap_or_default();
        entries.push((id, Entry { median_s, counters }));
    }
    Ok((group, entries))
}

/// Compare a snapshot against a baseline, both as JSON text.
pub fn diff(snapshot: &str, baseline: &str, options: DiffOptions) -> Result<DiffReport, String> {
    let (group, snap_entries) = parse_snapshot(snapshot, "snapshot")?;
    let (base_group, base_entries) = parse_snapshot(baseline, "baseline")?;
    if group != base_group {
        return Err(format!(
            "group mismatch: snapshot is `{group}`, baseline is `{base_group}`"
        ));
    }
    let snap: BTreeMap<&str, &Entry> = snap_entries
        .iter()
        .map(|(id, e)| (id.as_str(), e))
        .collect();
    let mut deltas = Vec::new();
    for (id, base) in &base_entries {
        let Some(snap_entry) = snap.get(id.as_str()) else {
            deltas.push(BenchDelta {
                id: id.clone(),
                status: Status::Removed,
                baseline_median_s: Some(base.median_s),
                snapshot_median_s: None,
                median_ratio: None,
                counter_changes: Vec::new(),
            });
            continue;
        };
        let ratio = if base.median_s > 0.0 {
            Some(snap_entry.median_s / base.median_s)
        } else {
            None
        };
        let names: std::collections::BTreeSet<&String> = base
            .counters
            .keys()
            .chain(snap_entry.counters.keys())
            .collect();
        let counter_changes: Vec<(String, u64, u64)> = names
            .into_iter()
            .filter_map(|name| {
                let b = base.counters.get(name).copied().unwrap_or(0);
                let s = snap_entry.counters.get(name).copied().unwrap_or(0);
                (b != s).then(|| (name.clone(), b, s))
            })
            .collect();
        let slow = ratio.is_some_and(|r| r > options.max_ratio)
            && snap_entry.median_s - base.median_s > options.min_delta_s;
        let status = if slow {
            Status::Regressed
        } else if !counter_changes.is_empty() {
            Status::CountersChanged
        } else if ratio.is_some_and(|r| r < 1.0 / options.max_ratio) {
            Status::Improved
        } else {
            Status::Ok
        };
        deltas.push(BenchDelta {
            id: id.clone(),
            status,
            baseline_median_s: Some(base.median_s),
            snapshot_median_s: Some(snap_entry.median_s),
            median_ratio: ratio,
            counter_changes,
        });
    }
    let base_ids: std::collections::BTreeSet<&str> =
        base_entries.iter().map(|(id, _)| id.as_str()).collect();
    for (id, entry) in &snap_entries {
        if !base_ids.contains(id.as_str()) {
            deltas.push(BenchDelta {
                id: id.clone(),
                status: Status::Added,
                baseline_median_s: None,
                snapshot_median_s: Some(entry.median_s),
                median_ratio: None,
                counter_changes: Vec::new(),
            });
        }
    }
    Ok(DiffReport {
        group,
        deltas,
        options,
    })
}

/// Compare two snapshot files on disk.
pub fn diff_files(
    snapshot: &Path,
    baseline: &Path,
    options: DiffOptions,
) -> Result<DiffReport, String> {
    let read = |p: &Path| {
        std::fs::read_to_string(p).map_err(|e| format!("cannot read `{}`: {e}", p.display()))
    };
    diff(&read(snapshot)?, &read(baseline)?, options)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(group: &str, rows: &[(&str, f64, &str)]) -> String {
        let mut s = format!("{{\"group\":\"{group}\",\"benchmarks\":[");
        for (i, (id, median, metrics)) in rows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"id\":\"{id}\",\"samples\":10,\"min_s\":{median:e},\
                 \"median_s\":{median:e},\"mean_s\":{median:e},\"metrics\":{metrics}}}"
            ));
        }
        s.push_str("]}");
        s
    }

    #[test]
    fn identical_snapshots_pass() {
        let text = doc("g", &[("a/1", 1e-3, "null"), ("b/2", 2e-3, "null")]);
        let report = diff(&text, &text, DiffOptions::default()).unwrap();
        assert!(!report.has_regressions());
        assert!(report.deltas.iter().all(|d| d.status == Status::Ok));
        assert_eq!(report.deltas[0].median_ratio, Some(1.0));
    }

    #[test]
    fn double_median_is_flagged_as_regression() {
        let base = doc("g", &[("a/1", 1e-3, "null")]);
        let snap = doc("g", &[("a/1", 2e-3, "null")]);
        let report = diff(&snap, &base, DiffOptions::default()).unwrap();
        assert!(report.has_regressions());
        assert_eq!(report.deltas[0].status, Status::Regressed);
        assert!(report.deltas[0].median_ratio.unwrap() > 1.9);
    }

    #[test]
    fn sub_slack_jitter_never_regresses() {
        // 3x ratio but only 100 ns absolute: micro-benchmark noise.
        let base = doc("g", &[("tiny/1", 5e-8, "null")]);
        let snap = doc("g", &[("tiny/1", 1.5e-7, "null")]);
        let report = diff(&snap, &base, DiffOptions::default()).unwrap();
        assert!(!report.has_regressions(), "{}", report.render_human());
    }

    #[test]
    fn faster_is_improved_not_failing() {
        let base = doc("g", &[("a/1", 2e-3, "null")]);
        let snap = doc("g", &[("a/1", 1e-3, "null")]);
        let report = diff(&snap, &base, DiffOptions::default()).unwrap();
        assert!(!report.has_regressions());
        assert_eq!(report.deltas[0].status, Status::Improved);
    }

    #[test]
    fn counter_drift_fails_hard_even_with_flat_median() {
        let base = doc(
            "g",
            &[(
                "a/1",
                1e-3,
                "{\"solver_iterations\":100,\"phases\":{\"solve\":1.0},\"counters\":{\"solver_colors\":4}}",
            )],
        );
        let snap = doc(
            "g",
            &[(
                "a/1",
                1e-3,
                "{\"solver_iterations\":150,\"phases\":{\"solve\":9.0},\"counters\":{\"solver_colors\":4}}",
            )],
        );
        let report = diff(&snap, &base, DiffOptions::default()).unwrap();
        assert!(report.has_regressions());
        assert_eq!(report.deltas[0].status, Status::CountersChanged);
        assert_eq!(
            report.deltas[0].counter_changes,
            vec![("solver_iterations".to_string(), 100, 150)]
        );
    }

    #[test]
    fn phases_floats_and_progress_events_are_exempt() {
        let base = doc(
            "g",
            &[(
                "a/1",
                1e-3,
                "{\"solver_last_residual\":1e-10,\"progress_events\":3,\"phases\":{\"solve\":1.0}}",
            )],
        );
        let snap = doc(
            "g",
            &[(
                "a/1",
                1e-3,
                "{\"solver_last_residual\":9e-10,\"progress_events\":7,\"phases\":{\"solve\":2.0}}",
            )],
        );
        let report = diff(&snap, &base, DiffOptions::default()).unwrap();
        assert!(!report.has_regressions(), "{}", report.render_human());
    }

    #[test]
    fn added_and_removed_ids_are_reported_but_pass() {
        let base = doc("g", &[("old/1", 1e-3, "null"), ("keep/1", 1e-3, "null")]);
        let snap = doc("g", &[("keep/1", 1e-3, "null"), ("new/1", 1e-3, "null")]);
        let report = diff(&snap, &base, DiffOptions::default()).unwrap();
        assert!(!report.has_regressions());
        let by_id: BTreeMap<&str, Status> = report
            .deltas
            .iter()
            .map(|d| (d.id.as_str(), d.status))
            .collect();
        assert_eq!(by_id["old/1"], Status::Removed);
        assert_eq!(by_id["new/1"], Status::Added);
        assert_eq!(by_id["keep/1"], Status::Ok);
    }

    #[test]
    fn group_mismatch_is_an_error() {
        let a = doc("g1", &[("a/1", 1e-3, "null")]);
        let b = doc("g2", &[("a/1", 1e-3, "null")]);
        assert!(diff(&a, &b, DiffOptions::default())
            .unwrap_err()
            .contains("group mismatch"));
    }

    #[test]
    fn json_report_has_fixed_key_order_and_parses() {
        let base = doc("g", &[("a/1", 1e-3, "null")]);
        let snap = doc("g", &[("a/1", 2.5e-3, "null")]);
        let report = diff(&snap, &base, DiffOptions::default()).unwrap();
        let text = report.render_json();
        assert!(
            text.starts_with("{\"group\":\"g\",\"max_ratio\":1.5e0,\"min_delta_s\":5e-6,\"failing\":1,\"deltas\":[{\"id\":\"a/1\",\"status\":\"regressed\",\"baseline_median_s\":"),
            "{text}"
        );
        let parsed = json::parse(&text).unwrap();
        assert_eq!(parsed.get("failing").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn human_report_shows_ratio_and_counter_lines() {
        let base = doc("g", &[("a/1", 1e-3, "{\"nodes_explored\":5}")]);
        let snap = doc("g", &[("a/1", 3e-3, "{\"nodes_explored\":9}")]);
        let human = diff(&snap, &base, DiffOptions::default())
            .unwrap()
            .render_human();
        assert!(human.contains("regressed"), "{human}");
        assert!(human.contains("(x3.00)"), "{human}");
        assert!(human.contains("counter nodes_explored: 5 -> 9"), "{human}");
    }
}
