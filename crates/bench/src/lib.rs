//! Experiment harness regenerating every table and figure of the
//! evaluation chapter (Chapter 5) of *Model Checking Markov Reward Models
//! with Impulse Rewards*.
//!
//! Each `table_*` function reproduces one table's rows; the figure series
//! (Figures 5.3–5.5) are the same data, exported as CSV by the
//! `experiments` binary. Absolute probabilities depend on this crate's
//! documented reward calibration (see `DESIGN.md`); the *shapes* — growth
//! with `t`, the reward-bound plateau, the error blow-up at constant `w`,
//! monotonicity in the number of working modules, uniformization vs
//! discretization agreement — are the reproduction targets recorded in
//! `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod harness;
pub mod tables;

use std::time::Instant;

/// Measure the wall-clock seconds a closure takes, returning its result.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Format a probability the way the thesis tables print them.
pub fn fmt_p(p: f64) -> String {
    format!("{p:.12}")
}

/// Format an error bound in scientific notation.
pub fn fmt_e(e: f64) -> String {
    format!("{e:.6e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_result_and_duration() {
        let (v, secs) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_p(0.5), "0.500000000000");
        assert!(fmt_e(1.5e-9).contains("e-9"));
    }
}
