//! Schema validation for the committed `BENCH_*.json` snapshots at the
//! repository root. The snapshot pairs are part of the repo's perf
//! record (`crates/bench/README.md`): a snapshot that lost its work
//! counters can no longer explain a wall-clock delta, and a malformed
//! one silently breaks the comparison tooling. CI used to grep for the
//! required keys; this test parses the files properly (with the same
//! minimal RFC 8259 parser the server uses) and checks the shape
//! structurally.

use std::path::Path;

use mrmc_server::json::{self, Value};

const SNAPSHOTS: &[&str] = &[
    "BENCH_kernels.json",
    "BENCH_kernels_baseline.json",
    "BENCH_parallel.json",
    "BENCH_parallel_baseline.json",
    "BENCH_adaptive.json",
    "BENCH_adaptive_baseline.json",
    "BENCH_dataflow.json",
    "BENCH_dataflow_baseline.json",
    "BENCH_server.json",
    "BENCH_server_baseline.json",
];

fn load(name: &str) -> Value {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed snapshot {name} must exist: {e}"));
    json::parse(&text).unwrap_or_else(|e| panic!("{name} is not valid JSON: {e:?}"))
}

fn benchmarks(doc: &Value, name: &str) -> Vec<Value> {
    let Some(Value::Arr(benches)) = doc.get("benchmarks") else {
        panic!("{name}: no benchmarks array");
    };
    assert!(!benches.is_empty(), "{name}: benchmarks array is empty");
    benches.clone()
}

#[test]
fn every_committed_snapshot_has_the_envelope_shape() {
    for name in SNAPSHOTS {
        let doc = load(name);
        assert!(
            doc.get("group").and_then(Value::as_str).is_some(),
            "{name}: no group key"
        );
        for bench in benchmarks(&doc, name) {
            let id = bench
                .get("id")
                .and_then(Value::as_str)
                .unwrap_or_else(|| panic!("{name}: benchmark without an id"));
            assert!(
                bench.get("samples").and_then(Value::as_u64).unwrap_or(0) > 0,
                "{name}/{id}: samples must be a positive integer"
            );
            for key in ["min_s", "median_s", "mean_s"] {
                let v = bench
                    .get(key)
                    .and_then(Value::as_f64)
                    .unwrap_or_else(|| panic!("{name}/{id}: no {key} sample"));
                assert!(
                    v.is_finite() && v > 0.0,
                    "{name}/{id}: {key} = {v} is not a positive finite time"
                );
            }
            // Timing order is a hard invariant of the sampler.
            let min = bench.get("min_s").and_then(Value::as_f64).unwrap();
            let median = bench.get("median_s").and_then(Value::as_f64).unwrap();
            assert!(
                min <= median,
                "{name}/{id}: min_s {min} exceeds median_s {median}"
            );
            // Benchmarks without work counters write `"metrics": null`;
            // anything else must be a real object.
            if let Some(metrics) = bench.get("metrics") {
                assert!(
                    matches!(metrics, Value::Obj(_) | Value::Null),
                    "{name}/{id}: metrics is neither an object nor null"
                );
            }
        }
    }
}

/// The adaptive pair exists to explain engine-selection deltas: its
/// work-counter story hinges on `omega_requests` and the free-form
/// counters map.
#[test]
fn adaptive_snapshots_carry_omega_work_counters() {
    for name in ["BENCH_adaptive.json", "BENCH_adaptive_baseline.json"] {
        let doc = load(name);
        for bench in benchmarks(&doc, name) {
            let metrics = bench.get("metrics").expect("envelope test covers this");
            assert!(
                metrics
                    .get("omega_requests")
                    .and_then(Value::as_u64)
                    .is_some(),
                "{name}: no omega_requests counter"
            );
            assert!(
                matches!(metrics.get("counters"), Some(Value::Obj(_))),
                "{name}: no counters object"
            );
        }
    }
}

/// The sliced half of the dataflow pair must carry the pre-pass
/// counters that justify its smaller solver_iterations numbers.
#[test]
fn dataflow_snapshot_carries_qualitative_prepass_counters() {
    let doc = load("BENCH_dataflow.json");
    let mut seen = false;
    for bench in benchmarks(&doc, "BENCH_dataflow.json") {
        let Some(counters) = bench.get("metrics").and_then(|m| m.get("counters")) else {
            continue;
        };
        for key in [
            "slice_states_removed",
            "qual_zero_states",
            "qual_one_states",
            "scc_count",
        ] {
            assert!(
                counters.get(key).and_then(Value::as_u64).is_some(),
                "BENCH_dataflow.json: no {key} counter"
            );
        }
        seen = true;
    }
    assert!(
        seen,
        "BENCH_dataflow.json: no benchmark carries the qualitative counters map"
    );
}

/// The committed regression pairs must pass the perf sentinel with the
/// CI gate's default tolerances — this is the same comparison the
/// `bench-diff` CI job runs via `mrmc bench diff`. The dataflow pair is
/// excluded: its `_baseline` file is an ablation (slicing off, its own
/// group name), not a frozen run of the same configuration.
#[test]
fn committed_pairs_pass_the_regression_sentinel() {
    use mrmc_bench::diff::{diff_files, DiffOptions};
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    for (current, baseline) in [
        ("BENCH_kernels.json", "BENCH_kernels_baseline.json"),
        ("BENCH_parallel.json", "BENCH_parallel_baseline.json"),
        ("BENCH_adaptive.json", "BENCH_adaptive_baseline.json"),
        ("BENCH_server.json", "BENCH_server_baseline.json"),
    ] {
        let report = diff_files(
            &root.join(current),
            &root.join(baseline),
            DiffOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{current} vs {baseline}: {e}"));
        assert!(
            !report.has_regressions(),
            "{current} regressed against {baseline}:\n{}",
            report.render_human()
        );
    }
}

/// Baselines pair with their counterparts benchmark by benchmark — a
/// renamed id silently breaks the perf comparison. A snapshot may gain
/// benchmarks after its baseline was frozen, so the requirement is
/// one-directional: every baseline id must still exist in the current
/// snapshot.
#[test]
fn every_baseline_benchmark_still_exists_in_its_snapshot() {
    for (current, baseline) in [
        ("BENCH_kernels.json", "BENCH_kernels_baseline.json"),
        ("BENCH_parallel.json", "BENCH_parallel_baseline.json"),
        ("BENCH_adaptive.json", "BENCH_adaptive_baseline.json"),
        ("BENCH_dataflow.json", "BENCH_dataflow_baseline.json"),
        ("BENCH_server.json", "BENCH_server_baseline.json"),
    ] {
        let ids = |name: &str| -> Vec<String> {
            let doc = load(name);
            benchmarks(&doc, name)
                .iter()
                .filter_map(|b| b.get("id").and_then(Value::as_str).map(str::to_string))
                .collect()
        };
        let current_ids = ids(current);
        let orphaned: Vec<String> = ids(baseline)
            .into_iter()
            .filter(|id| !current_ids.contains(id))
            .collect();
        assert!(
            orphaned.is_empty(),
            "{baseline} has benchmarks missing from {current}: {orphaned:?}"
        );
    }
}
