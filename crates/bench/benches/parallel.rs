//! Scaling bench for the parallel path-exploration engine: the same
//! reward-bounded until evaluated at 1, 2, and 4 worker threads on the TMR
//! and cluster models, plus a summary table of measured speedups. All
//! benchmarks share the single group `parallel`, so one snapshot file
//! (`BENCH_parallel.json`) captures the whole layer.
//!
//! The parallel engine is deterministic (bit-identical to serial at any
//! thread count — asserted here before timing), so any speedup is free:
//! no accuracy is traded. Speedups can only materialize on multi-core
//! hosts; on a single-CPU machine the threaded runs merely add scheduling
//! overhead.

use std::time::Instant;

use mrmc_bench::harness::{BenchmarkId, Criterion};
use mrmc_bench::tables::{thesis_lambda, tmr_dependability_sets};
use mrmc_bench::{criterion_group, criterion_main};
use mrmc_models::cluster::{cluster, ClusterConfig};
use mrmc_models::tmr::{tmr, TmrConfig};
use mrmc_mrm::Mrm;
use mrmc_numerics::uniformization::{until_probability, UniformOptions};

const THREADS: [usize; 3] = [1, 2, 4];

struct Case {
    name: &'static str,
    model: Mrm,
    phi: Vec<bool>,
    psi: Vec<bool>,
    start: usize,
    t: f64,
    r: f64,
    options: UniformOptions,
}

fn tmr_case() -> Case {
    let config = TmrConfig::classic();
    let model = tmr(&config);
    let (phi, psi) = tmr_dependability_sets(&model);
    let lambda = thesis_lambda(&model, &phi, &psi);
    let start = config.state_with_working(config.modules);
    Case {
        name: "tmr",
        model,
        phi,
        psi,
        start,
        t: 100.0,
        r: 3000.0,
        options: UniformOptions::new()
            .with_truncation(1e-9)
            .with_lambda(lambda),
    }
}

fn cluster_case() -> Case {
    let config = ClusterConfig::new(2);
    let model = cluster(&config);
    let phi = vec![true; model.num_states()];
    let psi = model.labeling().states_with("down");
    let start = config.all_up();
    Case {
        name: "cluster_n2",
        model,
        phi,
        psi,
        start,
        t: 10.0,
        r: 500.0,
        options: UniformOptions::new()
            .with_truncation(1e-8)
            .with_improved_pruning(),
    }
}

fn run(case: &Case, threads: usize) -> f64 {
    until_probability(
        &case.model,
        &case.phi,
        &case.psi,
        case.t,
        case.r,
        case.start,
        case.options.with_threads(threads),
    )
    .expect("uniformization succeeds")
    .probability
}

fn bench(c: &mut Criterion) {
    let cases = [tmr_case(), cluster_case()];
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    for case in &cases {
        // Determinism gate: the timed configurations must agree bit-for-bit
        // before their timings are worth comparing.
        let serial = run(case, 1);
        for threads in THREADS {
            assert_eq!(
                serial.to_bits(),
                run(case, threads).to_bits(),
                "{}: threads = {threads} diverged from serial",
                case.name
            );
            group.bench_with_input(
                BenchmarkId::new(format!("until/{}", case.name), threads),
                &threads,
                |b, &threads| b.iter(|| run(case, threads)),
            );
        }
    }
    group.finish();

    // Speedup summary: one timed pass per (case, threads) pair.
    println!("\nspeedup vs serial (single pass; needs a multi-core host):");
    for case in &cases {
        let time = |threads: usize| {
            let started = Instant::now();
            run(case, threads);
            started.elapsed().as_secs_f64()
        };
        let base = time(1);
        for threads in THREADS {
            let elapsed = time(threads);
            println!(
                "  {:<12} threads={threads}: {:>8.3} ms  ({:.2}x)",
                case.name,
                elapsed * 1e3,
                base / elapsed
            );
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
