//! Criterion bench for Table 5.7 / Figure 5.5: reaching full operation in
//! the 11-module system (variable failure rates), per starting state.

use mrmc_bench::harness::Criterion;
use mrmc_bench::tables::thesis_lambda;
use mrmc_bench::{criterion_group, criterion_main};
use mrmc_models::tmr::{tmr, TmrConfig};
use mrmc_numerics::uniformization::{until_probability, UniformOptions};

fn bench(c: &mut Criterion) {
    let config = TmrConfig::with_modules(11).variable();
    let m = tmr(&config);
    let phi = vec![true; m.num_states()];
    let psi = m.labeling().states_with("allUp");
    let lambda = thesis_lambda(&m, &phi, &psi);

    let mut group = c.benchmark_group("table_5_7_variable_rates");
    group.sample_size(10);
    for n in [0usize, 5, 10] {
        group.bench_function(format!("n={n}"), |b| {
            b.iter(|| {
                until_probability(
                    &m,
                    &phi,
                    &psi,
                    100.0,
                    2000.0,
                    config.state_with_working(n),
                    UniformOptions::new()
                        .with_truncation(1e-8)
                        .with_lambda(lambda),
                )
                .unwrap()
                .probability
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
