//! Criterion bench for Table 5.8: discretization on the TMR model with
//! `d = 0.25`, per mission time.

use mrmc_bench::harness::Criterion;
use mrmc_bench::tables::tmr_dependability_sets;
use mrmc_bench::{criterion_group, criterion_main};
use mrmc_models::tmr::{tmr, TmrConfig};
use mrmc_numerics::discretization::{until_probability, DiscretizationOptions};

fn bench(c: &mut Criterion) {
    let config = TmrConfig::classic();
    let m = tmr(&config);
    let (phi, psi) = tmr_dependability_sets(&m);
    let start = config.state_with_working(3);

    let mut group = c.benchmark_group("table_5_8_discretization");
    group.sample_size(10);
    for t in [50.0, 200.0] {
        group.bench_function(format!("t={t}"), |b| {
            b.iter(|| {
                until_probability(
                    &m,
                    &phi,
                    &psi,
                    t,
                    3000.0,
                    start,
                    DiscretizationOptions::with_step(0.25),
                )
                .unwrap()
                .probability
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
