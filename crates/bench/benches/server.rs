//! Service-shape benchmarks for the checker-as-a-service layer, snapshot
//! group `server` (`BENCH_server.json`):
//!
//! * `check/cold` — a fresh [`CheckSession`] per check: the price of the
//!   first request after a model is loaded, every cache empty;
//! * `check/hot` — the same check against a long-lived shared session,
//!   where the sat cache answers and only the memoized lookup is paid;
//! * `batch/roundtrip` — a full `mrmc serve` conversation over loopback
//!   TCP: bind, connect, load the model, run two checks, drain the
//!   `run_summary`. This is the end-to-end latency a batch client sees,
//!   protocol framing and socket included.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use mrmc::{CheckOptions, CheckSession};
use mrmc_bench::harness::{black_box, Criterion};
use mrmc_bench::{criterion_group, criterion_main};
use mrmc_models::tmr::{tmr, TmrConfig};
use mrmc_server::{Server, ServerConfig};

const FORMULA: &str = "P(> 0.1) [TT U[0,1][0,10] failed]";

fn bench_sessions(c: &mut Criterion) {
    let mut group = c.benchmark_group("server");
    group.sample_size(10);
    let mrm = tmr(&TmrConfig::classic());
    let options = CheckOptions::new();

    group.bench_function("check/cold", |b| {
        b.iter(|| {
            let session = CheckSession::new();
            let handle = session.insert(mrm.clone());
            black_box(session.check_str(&handle, FORMULA, &options).unwrap())
        });
    });

    let session = CheckSession::new();
    let handle = session.insert(mrm.clone());
    // Prime once so every timed iteration is a pure cache hit.
    session.check_str(&handle, FORMULA, &options).unwrap();
    group.bench_function("check/hot", |b| {
        b.iter(|| black_box(session.check_str(&handle, FORMULA, &options).unwrap()));
    });

    let dir = std::env::temp_dir().join(format!("mrmc-bench-server-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let paths = {
        use mrmc_mrm::io::{write_lab, write_rewi, write_rewr, write_tra};
        let paths = [
            dir.join("m.tra"),
            dir.join("m.lab"),
            dir.join("m.rewr"),
            dir.join("m.rewi"),
        ];
        std::fs::write(&paths[0], write_tra(&mrm)).unwrap();
        std::fs::write(&paths[1], write_lab(&mrm)).unwrap();
        std::fs::write(&paths[2], write_rewr(&mrm)).unwrap();
        std::fs::write(&paths[3], write_rewi(&mrm)).unwrap();
        paths
    };
    let requests = format!(
        "{{\"load\":{{\"model\":\"tmr\",\"tra\":\"{}\",\"lab\":\"{}\",\"rewr\":\"{}\",\"rewi\":\"{}\"}}}}\n\
         {{\"check\":{{\"model\":\"tmr\",\"formula\":\"{FORMULA}\"}},\"id\":1}}\n\
         {{\"check\":{{\"model\":\"tmr\",\"formula\":\"{FORMULA}\"}},\"id\":2}}\n",
        paths[0].display(),
        paths[1].display(),
        paths[2].display(),
        paths[3].display()
    );
    group.bench_function("batch/roundtrip", |b| {
        b.iter(|| {
            let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
            let addr = server.local_addr().unwrap().to_string();
            std::thread::scope(|scope| {
                let handle = scope.spawn(|| server.run(Some(1)));
                let stream = TcpStream::connect(&addr).expect("connect");
                stream
                    .try_clone()
                    .unwrap()
                    .write_all(requests.as_bytes())
                    .unwrap();
                stream.shutdown(std::net::Shutdown::Write).unwrap();
                let lines = BufReader::new(stream).lines().count();
                handle.join().unwrap().unwrap();
                black_box(lines)
            })
        });
    });
    std::fs::remove_dir_all(&dir).ok();

    group.finish();
}

criterion_group!(benches, bench_sessions);
criterion_main!(benches);
