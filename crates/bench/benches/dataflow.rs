//! Before/after evidence for qualitative slicing: every case runs twice,
//! once with slicing disabled (`dataflow_baseline` group) and once with
//! the default pre-pass on (`dataflow` group), under identical benchmark
//! ids. The paired `BENCH_dataflow_baseline.json` / `BENCH_dataflow.json`
//! snapshots then show the pruning directly in the embedded work
//! counters, not just in wall time:
//!
//! * `tmr_gs_tt_u_failed` / `cluster4_gs_tt_u_down` — unbounded untils on
//!   irreducible repair models, where Prob1 proves *every* state
//!   certain-one and the Gauss–Seidel solve (`solver_iterations`)
//!   disappears entirely;
//! * `cluster4_grid_premium_u_down` — a time/reward-bounded until whose
//!   invariant cannot hold all the way to the goal (premium service never
//!   degrades straight to `down`), so Prob0 marks every `premium` start
//!   certain-zero and the discretization grid (`grid_reward_cells`)
//!   collapses;
//! * `cluster4_uniform_premium_u_down` — the same formula under the
//!   default uniformization engine, where the sliced invariant empties
//!   and the depth-first path exploration (`nodes_explored`) shrinks to
//!   the goal states.

use mrmc::{CheckOptions, ModelChecker, UntilEngine};
use mrmc_bench::harness::{black_box, Criterion};
use mrmc_bench::{criterion_group, criterion_main};
use mrmc_models::cluster::{cluster, ClusterConfig};
use mrmc_models::tmr::{tmr, TmrConfig};
use mrmc_mrm::Mrm;

/// The shared case list: id, model, formula, per-case engine options.
fn cases() -> Vec<(&'static str, Mrm, &'static str, CheckOptions)> {
    let tmr = tmr(&TmrConfig::classic());
    let cluster = cluster(&ClusterConfig::new(4));
    // The cluster's repair/failure rate ratio makes the unbounded solve
    // stiff; a realistic solver tolerance keeps the unsliced baseline
    // convergent within its sweep cap.
    let mut stiff = CheckOptions::new();
    stiff.solver = stiff.solver.with_tolerance(1e-5);
    vec![
        (
            "tmr_gs_tt_u_failed",
            tmr,
            "P(> 0.1) [TT U failed]",
            CheckOptions::new(),
        ),
        (
            "cluster4_gs_tt_u_down",
            cluster.clone(),
            "P(> 0.1) [TT U down]",
            stiff,
        ),
        (
            "cluster4_grid_premium_u_down",
            cluster.clone(),
            "P(> 0.001) [premium U[0,1][0,4] down]",
            CheckOptions::new().with_engine(UntilEngine::discretization(0.1)),
        ),
        (
            "cluster4_uniform_premium_u_down",
            cluster,
            "P(> 0.001) [premium U[0,1][0,4] down]",
            CheckOptions::new(),
        ),
    ]
}

fn run_group(c: &mut Criterion, group_name: &str, slicing: bool) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for (id, mrm, formula, options) in cases() {
        let options = if slicing {
            options
        } else {
            options.without_slicing()
        };
        let checker = ModelChecker::new(mrm, options);
        let parsed = mrmc_csrl::parse(formula).unwrap();
        group.bench_function(id, |b| {
            b.iter(|| black_box(checker.check(black_box(&parsed)).unwrap()));
        });
    }
    group.finish();
}

fn bench_dataflow(c: &mut Criterion) {
    run_group(c, "dataflow_baseline", false);
    run_group(c, "dataflow", true);
}

criterion_group!(benches, bench_dataflow);
criterion_main!(benches);
