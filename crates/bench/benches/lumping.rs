//! Cost of the lumpability pipeline: partition refinement ([`analyze`]),
//! independent certificate re-validation ([`LumpingCertificate::verify`]),
//! and quotient construction, on the shipped case studies and on seeded
//! random models of growing size. The point of the numbers: refinement is
//! the expensive half, verification stays `O(m)`-cheap, so re-checking a
//! certificate before trusting it costs next to nothing.
//!
//! [`analyze`]: mrmc_analysis::lumping::analyze
//! [`LumpingCertificate::verify`]: mrmc_analysis::lumping::LumpingCertificate::verify

use mrmc_analysis::lumping::analyze;
use mrmc_bench::harness::{black_box, Criterion};
use mrmc_bench::{criterion_group, criterion_main};
use mrmc_models::cluster::{cluster, ClusterConfig};
use mrmc_models::random::{random_mrm, RandomMrmConfig};
use mrmc_models::tmr::{tmr, TmrConfig};
use mrmc_mrm::transform;

fn bench_case_studies(c: &mut Criterion) {
    let cases = [
        ("tmr_pure_ap", tmr(&TmrConfig::classic()), "Sup"),
        ("tmr_steady", tmr(&TmrConfig::classic()), "S(> 0.9) (Sup)"),
        (
            "cluster4_pure_ap",
            cluster(&ClusterConfig::new(4)),
            "premium",
        ),
        (
            "cluster4_until",
            cluster(&ClusterConfig::new(4)),
            "P(>= 0.1) [TT U[0,1] down]",
        ),
    ];

    let mut group = c.benchmark_group("lumping_analyze");
    group.sample_size(20);
    for (name, mrm, formula) in &cases {
        let phi = mrmc_csrl::parse(formula).unwrap();
        group.bench_function(*name, |b| {
            b.iter(|| black_box(analyze(mrm, &phi)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("lumping_verify_and_quotient");
    group.sample_size(20);
    for (name, mrm, formula) in &cases {
        let phi = mrmc_csrl::parse(formula).unwrap();
        let Some(cert) = analyze(mrm, &phi).certificate else {
            continue; // identity partition: nothing to certify or build
        };
        group.bench_function(format!("verify_{name}"), |b| {
            b.iter(|| cert.verify(black_box(mrm)).unwrap());
        });
        group.bench_function(format!("quotient_{name}"), |b| {
            b.iter(|| transform::quotient(black_box(mrm), &cert.partition).unwrap());
        });
    }
    group.finish();
}

fn bench_random_scaling(c: &mut Criterion) {
    let phi = mrmc_csrl::parse("goal").unwrap();
    let mut group = c.benchmark_group("lumping_random_scaling");
    group.sample_size(10);
    for states in [64, 256, 1024] {
        let config = RandomMrmConfig {
            states,
            ..RandomMrmConfig::default()
        };
        let mrm = random_mrm(7, &config);
        group.bench_function(format!("analyze_n={states}"), |b| {
            b.iter(|| black_box(analyze(&mrm, &phi)));
        });
        if let Some(cert) = analyze(&mrm, &phi).certificate {
            group.bench_function(format!("verify_n={states}"), |b| {
                b.iter(|| cert.verify(black_box(&mrm)).unwrap());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_case_studies, bench_random_scaling);
criterion_main!(benches);
