//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * literal (thesis) vs potential-based pruning in DFPG;
//! * the uniformization-rate choice (`Λ = max E` vs `1.02 · max E`);
//! * the engine comparison on the same query (uniformization vs
//!   discretization vs the state-reward-free baseline that ignores the
//!   reward bound).

use mrmc_bench::harness::Criterion;
use mrmc_bench::tables::{thesis_lambda, tmr_dependability_sets};
use mrmc_bench::{criterion_group, criterion_main};
use mrmc_models::queue::{queue, QueueConfig};
use mrmc_models::tmr::{tmr, TmrConfig};
use mrmc_numerics::baseline;
use mrmc_numerics::discretization::{self, DiscretizationOptions};
use mrmc_numerics::uniformization::{until_probability, UniformOptions};
use mrmc_sparse::solver::{gauss_seidel, jacobi, sor, SolverOptions};
use mrmc_sparse::CooBuilder;

fn bench_pruning(c: &mut Criterion) {
    let config = TmrConfig::classic();
    let m = tmr(&config);
    let (phi, psi) = tmr_dependability_sets(&m);
    let lambda = thesis_lambda(&m, &phi, &psi);
    let start = config.state_with_working(3);

    let mut group = c.benchmark_group("ablation_pruning_rule");
    group.sample_size(10);
    group.bench_function("literal_t=400_w=1e-11", |b| {
        b.iter(|| {
            until_probability(
                &m,
                &phi,
                &psi,
                400.0,
                3000.0,
                start,
                UniformOptions::new()
                    .with_truncation(1e-11)
                    .with_lambda(lambda),
            )
            .unwrap()
            .probability
        });
    });
    group.bench_function("potential_t=400_w=1e-11", |b| {
        b.iter(|| {
            until_probability(
                &m,
                &phi,
                &psi,
                400.0,
                3000.0,
                start,
                UniformOptions::new()
                    .with_truncation(1e-11)
                    .with_lambda(lambda)
                    .with_improved_pruning(),
            )
            .unwrap()
            .probability
        });
    });
    group.finish();
}

fn bench_lambda_choice(c: &mut Criterion) {
    let config = TmrConfig::classic();
    let m = tmr(&config);
    let (phi, psi) = tmr_dependability_sets(&m);
    let lambda = thesis_lambda(&m, &phi, &psi);
    let start = config.state_with_working(3);

    let mut group = c.benchmark_group("ablation_lambda_choice");
    group.sample_size(10);
    group.bench_function("max_exit", |b| {
        b.iter(|| {
            until_probability(
                &m,
                &phi,
                &psi,
                300.0,
                3000.0,
                start,
                UniformOptions::new()
                    .with_truncation(1e-9)
                    .with_lambda(lambda),
            )
            .unwrap()
            .probability
        });
    });
    group.bench_function("slack_1.02", |b| {
        b.iter(|| {
            until_probability(
                &m,
                &phi,
                &psi,
                300.0,
                3000.0,
                start,
                UniformOptions::new().with_truncation(1e-9),
            )
            .unwrap()
            .probability
        });
    });
    group.finish();
}

fn bench_engine_comparison(c: &mut Criterion) {
    let config = TmrConfig::classic();
    let m = tmr(&config);
    let (phi, psi) = tmr_dependability_sets(&m);
    let lambda = thesis_lambda(&m, &phi, &psi);
    let start = config.state_with_working(3);

    let mut group = c.benchmark_group("ablation_engine_comparison_t=100");
    group.sample_size(10);
    group.bench_function("uniformization_w=1e-8", |b| {
        b.iter(|| {
            until_probability(
                &m,
                &phi,
                &psi,
                100.0,
                3000.0,
                start,
                UniformOptions::new()
                    .with_truncation(1e-8)
                    .with_lambda(lambda),
            )
            .unwrap()
            .probability
        });
    });
    group.bench_function("discretization_d=0.25", |b| {
        b.iter(|| {
            discretization::until_probability(
                &m,
                &phi,
                &psi,
                100.0,
                3000.0,
                start,
                DiscretizationOptions::with_step(0.25),
            )
            .unwrap()
            .probability
        });
    });
    group.bench_function("baseline_no_reward_bound", |b| {
        b.iter(|| baseline::until_time_bounded(&m, &phi, &psi, 100.0, 1e-10).unwrap()[start]);
    });
    group.finish();
}

fn bench_linear_solvers(c: &mut Criterion) {
    // The reachability-style system (I − P')x = b of a large breakdown
    // queue: which iterative solver reaches 1e-12 fastest?
    let config = QueueConfig::new(128);
    let m = queue(&config);
    let embedded = m.ctmc().embedded_dtmc();
    let probs = embedded.probabilities();
    let n = m.num_states();
    let full = m.labeling().states_with("full");

    // Assemble (I − P_maybe) x = P·1_full restricted to non-target states.
    let mut builder = CooBuilder::new(n, n);
    let mut rhs = vec![0.0; n];
    for s in 0..n {
        builder.push(s, s, 1.0);
        if full[s] {
            continue;
        }
        for (t, p) in probs.row(s) {
            if full[t] {
                rhs[s] += p;
            } else {
                builder.push(s, t, -p);
            }
        }
    }
    let a = builder.build().unwrap();
    let x0 = vec![0.0; n];
    // The K = 128 queue is stiff; 1e-9 keeps all three solvers in budget.
    let opts = SolverOptions::new()
        .with_tolerance(1e-9)
        .with_max_iterations(2_000_000);

    let mut group = c.benchmark_group("ablation_linear_solvers_queue128");
    group.sample_size(20);
    group.bench_function("gauss_seidel", |b| {
        b.iter(|| gauss_seidel(&a, &rhs, &x0, opts).unwrap());
    });
    group.bench_function("sor_1.3", |b| {
        b.iter(|| sor(&a, &rhs, &x0, 1.3, opts).unwrap());
    });
    group.bench_function("jacobi", |b| {
        b.iter(|| jacobi(&a, &rhs, &x0, opts).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pruning,
    bench_lambda_choice,
    bench_engine_comparison,
    bench_linear_solvers
);
criterion_main!(benches);
