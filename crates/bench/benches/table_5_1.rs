//! Criterion bench for Table 5.1: discretization on the phone model
//! (state rewards only), one benchmark per step size.

use mrmc_bench::harness::Criterion;
use mrmc_bench::{criterion_group, criterion_main};
use mrmc_models::phone;
use mrmc_numerics::discretization::{self, DiscretizationOptions};

fn bench(c: &mut Criterion) {
    let m = phone::phone();
    let phi: Vec<bool> = (0..m.num_states())
        .map(|s| m.labeling().has(s, "Call_Idle") || m.labeling().has(s, "Doze"))
        .collect();
    let psi = m.labeling().states_with("Call_Initiated");

    let mut group = c.benchmark_group("table_5_1_discretization");
    group.sample_size(10);
    for denom in [16u32, 32] {
        group.bench_function(format!("d=1/{denom}"), |b| {
            b.iter(|| {
                discretization::until_probability(
                    &m,
                    &phi,
                    &psi,
                    24.0,
                    600.0,
                    phone::DOZE,
                    DiscretizationOptions::with_step(1.0 / f64::from(denom)),
                )
                .unwrap()
                .probability
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
