//! Criterion bench for Table 5.4: TMR(3) uniformization with the
//! error-maintaining `(t, w)` schedule.

use mrmc_bench::harness::Criterion;
use mrmc_bench::tables;
use mrmc_bench::{criterion_group, criterion_main};
use mrmc_models::tmr::{tmr, TmrConfig};

fn bench(c: &mut Criterion) {
    let config = TmrConfig::classic();
    let m = tmr(&config);
    let mut group = c.benchmark_group("table_5_4_maintained_error");
    group.sample_size(10);
    for (t, w) in [(200.0, 1e-8), (400.0, 1e-11), (500.0, 1e-13)] {
        group.bench_function(format!("t={t}_w={w:.0e}"), |b| {
            b.iter(|| tables::tmr_until_row(&m, &config, t, w).probability);
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
