//! Work vs. requested tolerance: the adaptive driver on the TMR
//! dependability query. Each benchmark fixes a target ε and measures the
//! full refinement loop (all rounds until the reported budget is ≤ ε), so
//! the timings track how much extra exploration each decade of accuracy
//! costs. All benchmarks share the single group `adaptive`, so one
//! snapshot file (`BENCH_adaptive.json`) captures both engines' drivers.

use mrmc_bench::harness::Criterion;
use mrmc_bench::tables;
use mrmc_bench::{criterion_group, criterion_main};
use mrmc_models::tmr::{tmr, TmrConfig};
use mrmc_numerics::adaptive::{self, AdaptiveOptions};
use mrmc_numerics::discretization::DiscretizationOptions;
use mrmc_numerics::uniformization::UniformOptions;

fn bench(c: &mut Criterion) {
    let config = TmrConfig::classic();
    let m = tmr(&config);
    let (phi, psi) = tables::tmr_dependability_sets(&m);
    let start = config.state_with_working(3);
    let (t, r) = (100.0, 3000.0);

    let mut group = c.benchmark_group("adaptive");
    group.sample_size(10);
    for epsilon in [1e-3, 1e-6, 1e-9] {
        group.bench_function(format!("uniformization/eps={epsilon:e}"), |b| {
            b.iter(|| {
                adaptive::uniformization_until(
                    &m,
                    &phi,
                    &psi,
                    t,
                    r,
                    start,
                    UniformOptions::new().with_lambda(0.0505),
                    AdaptiveOptions::new(epsilon),
                )
                .unwrap()
                .probability
            });
        });
    }
    for epsilon in [1e-2, 1e-3] {
        group.bench_function(format!("discretization/eps={epsilon:e}"), |b| {
            b.iter(|| {
                adaptive::discretization_until(
                    &m,
                    &phi,
                    &psi,
                    t,
                    r,
                    start,
                    DiscretizationOptions::with_step(0.25),
                    AdaptiveOptions::new(epsilon),
                )
                .unwrap()
                .probability
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
