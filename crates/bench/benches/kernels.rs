//! Scaling benches for the numerical kernels underneath the engines:
//! Poisson layers, the Omega recursion, sparse matrix–vector products,
//! BSCC decomposition, and whole-engine scaling on the breakdown queue.

use mrmc_bench::harness::{BenchmarkId, Criterion};
use mrmc_bench::{criterion_group, criterion_main};
use mrmc_ctmc::bscc::SccDecomposition;
use mrmc_ctmc::poisson::{pmf, FoxGlynn, Weights};
use mrmc_models::cluster::{cluster, ClusterConfig};
use mrmc_models::queue::{queue, QueueConfig};
use mrmc_models::random::{random_mrm, RandomMrmConfig};
use mrmc_numerics::omega::OmegaEvaluator;
use mrmc_numerics::uniformization::{until_probability, UniformOptions};

fn bench_poisson(c: &mut Criterion) {
    let mut group = c.benchmark_group("poisson");
    for lt in [5.0, 50.0, 500.0] {
        group.bench_with_input(BenchmarkId::new("fox_glynn", lt), &lt, |b, &lt| {
            b.iter(|| FoxGlynn::new(lt, 1e-10).weights().len());
        });
        group.bench_with_input(BenchmarkId::new("recursion_100", lt), &lt, |b, &lt| {
            b.iter(|| Weights::new(lt).take(100).sum::<f64>());
        });
        group.bench_with_input(BenchmarkId::new("log_pmf_100", lt), &lt, |b, &lt| {
            b.iter(|| (0..100u64).map(|n| pmf(lt, n)).sum::<f64>());
        });
    }
    group.finish();
}

fn bench_omega(c: &mut Criterion) {
    let mut group = c.benchmark_group("omega_recursion");
    group.sample_size(20);
    for n in [8u32, 16, 32] {
        group.bench_with_input(BenchmarkId::new("cold_cache", n), &n, |b, &n| {
            b.iter(|| {
                let mut o = OmegaEvaluator::new(vec![5.0, 3.0, 1.0, 0.0]).unwrap();
                o.evaluate(1.7, &[n / 4, n / 4, n / 4, n / 4])
            });
        });
        group.bench_with_input(BenchmarkId::new("warm_cache", n), &n, |b, &n| {
            let mut o = OmegaEvaluator::new(vec![5.0, 3.0, 1.0, 0.0]).unwrap();
            let counts = [n / 4, n / 4, n / 4, n / 4];
            o.evaluate(1.7, &counts);
            b.iter(|| o.evaluate(1.7, &counts));
        });
    }
    group.finish();
}

fn bench_sparse_and_bscc(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_kernels");
    group.sample_size(20);
    for states in [100usize, 1000] {
        let cfg = RandomMrmConfig {
            states,
            extra_transitions_per_state: 3.0,
            ..RandomMrmConfig::default()
        };
        let m = random_mrm(42, &cfg);
        let rates = m.ctmc().rates().clone();
        let x = vec![1.0 / states as f64; states];
        group.bench_with_input(BenchmarkId::new("vec_mul", states), &rates, |b, r| {
            b.iter(|| r.vec_mul(&x));
        });
        group.bench_with_input(BenchmarkId::new("bscc", states), &rates, |b, r| {
            b.iter(|| SccDecomposition::new(r).num_components());
        });
    }
    group.finish();
}

fn bench_queue_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_until_scaling");
    group.sample_size(10);
    for k in [4usize, 8, 16] {
        let config = QueueConfig::new(k);
        let m = queue(&config);
        let phi = vec![true; m.num_states()];
        let psi = m.labeling().states_with("full");
        let start = config.up_state(0);
        group.bench_with_input(BenchmarkId::new("uniformization", k), &k, |b, _| {
            b.iter(|| {
                until_probability(
                    &m,
                    &phi,
                    &psi,
                    2.0,
                    25.0,
                    start,
                    UniformOptions::new().with_truncation(1e-7),
                )
                .unwrap()
                .probability
            });
        });
    }
    group.finish();
}

fn bench_cluster_scaling(c: &mut Criterion) {
    // Whole-pipeline scaling on the cluster model: steady state and the
    // reward-blind baseline until, across state-space sizes.
    let mut group = c.benchmark_group("cluster_scaling");
    group.sample_size(10);
    for n in [2usize, 4, 8] {
        let config = ClusterConfig::new(n);
        let m = cluster(&config);
        let states = m.num_states();
        let phi = vec![true; states];
        let psi = m.labeling().states_with("down");
        group.bench_with_input(
            BenchmarkId::new("baseline_until_t24", states),
            &m,
            |b, m| {
                b.iter(|| {
                    mrmc_numerics::baseline::until_time_bounded(m, &phi, &psi, 24.0, 1e-9).unwrap()
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("steady_state", states), &m, |b, m| {
            b.iter(|| {
                mrmc_ctmc::steady::steady_state_strongly_connected(
                    m.ctmc(),
                    mrmc_sparse::solver::SolverOptions::new().with_tolerance(1e-9),
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_poisson,
    bench_omega,
    bench_sparse_and_bscc,
    bench_queue_scaling,
    bench_cluster_scaling
);
criterion_main!(benches);
