//! Scaling benches for the numerical kernels underneath the engines:
//! Poisson layers, the Omega recursion, sparse matrix–vector products,
//! BSCC decomposition, and whole-engine scaling on the breakdown queue.
//!
//! All benchmarks share the single group `kernels`, so one snapshot file
//! (`BENCH_kernels.json` at the repository root) captures the whole kernel
//! layer; ids are namespaced `section/benchmark/param`.

use mrmc_bench::harness::{BenchmarkId, Criterion};
use mrmc_bench::{criterion_group, criterion_main};
use mrmc_ctmc::bscc::SccDecomposition;
use mrmc_ctmc::poisson::{pmf, FoxGlynn, Weights};
use mrmc_models::cluster::{cluster, ClusterConfig};
use mrmc_models::queue::{queue, QueueConfig};
use mrmc_models::random::{random_mrm, RandomMrmConfig};
use mrmc_numerics::omega::OmegaEvaluator;
use mrmc_numerics::uniformization::{until_probability, UniformOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");

    // Poisson layers.
    group.sample_size(10);
    for lt in [5.0, 50.0, 500.0] {
        group.bench_with_input(BenchmarkId::new("poisson/fox_glynn", lt), &lt, |b, &lt| {
            b.iter(|| FoxGlynn::new(lt, 1e-10).weights().len());
        });
        group.bench_with_input(
            BenchmarkId::new("poisson/recursion_100", lt),
            &lt,
            |b, &lt| {
                b.iter(|| Weights::new(lt).take(100).sum::<f64>());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("poisson/log_pmf_100", lt),
            &lt,
            |b, &lt| {
                b.iter(|| (0..100u64).map(|n| pmf(lt, n)).sum::<f64>());
            },
        );
    }

    // The Omega recursion (Alg. 4.8).
    group.sample_size(20);
    for n in [8u32, 16, 32] {
        group.bench_with_input(BenchmarkId::new("omega/cold_cache", n), &n, |b, &n| {
            b.iter(|| {
                let mut o = OmegaEvaluator::new(vec![5.0, 3.0, 1.0, 0.0]).unwrap();
                o.evaluate(1.7, &[n / 4, n / 4, n / 4, n / 4])
            });
        });
        group.bench_with_input(BenchmarkId::new("omega/warm_cache", n), &n, |b, &n| {
            let mut o = OmegaEvaluator::new(vec![5.0, 3.0, 1.0, 0.0]).unwrap();
            let counts = [n / 4, n / 4, n / 4, n / 4];
            o.evaluate(1.7, &counts);
            b.iter(|| o.evaluate(1.7, &counts));
        });
    }

    // Sparse matrix–vector products and BSCC decomposition.
    group.sample_size(20);
    for states in [100usize, 1000] {
        let cfg = RandomMrmConfig {
            states,
            extra_transitions_per_state: 3.0,
            ..RandomMrmConfig::default()
        };
        let m = random_mrm(42, &cfg);
        let rates = m.ctmc().rates().clone();
        let x = vec![1.0 / states as f64; states];
        group.bench_with_input(BenchmarkId::new("graph/vec_mul", states), &rates, |b, r| {
            b.iter(|| r.vec_mul(&x));
        });
        group.bench_with_input(BenchmarkId::new("graph/mul_vec", states), &rates, |b, r| {
            b.iter(|| r.mul_vec(&x));
        });
        group.bench_with_input(
            BenchmarkId::new("graph/mul_vec_compensated", states),
            &rates,
            |b, r| {
                b.iter(|| r.mul_vec_compensated(&x));
            },
        );
        group.bench_with_input(BenchmarkId::new("graph/bscc", states), &rates, |b, r| {
            b.iter(|| SccDecomposition::new(r).num_components());
        });
    }

    // Whole-engine scaling on the breakdown queue.
    group.sample_size(10);
    for k in [4usize, 8, 16] {
        let config = QueueConfig::new(k);
        let m = queue(&config);
        let phi = vec![true; m.num_states()];
        let psi = m.labeling().states_with("full");
        let start = config.up_state(0);
        group.bench_with_input(BenchmarkId::new("queue/uniformization", k), &k, |b, _| {
            b.iter(|| {
                until_probability(
                    &m,
                    &phi,
                    &psi,
                    2.0,
                    25.0,
                    start,
                    UniformOptions::new().with_truncation(1e-7),
                )
                .unwrap()
                .probability
            });
        });
    }

    // Whole-pipeline scaling on the cluster model: steady state and the
    // reward-blind baseline until, across state-space sizes.
    group.sample_size(10);
    for n in [2usize, 4, 8] {
        let config = ClusterConfig::new(n);
        let m = cluster(&config);
        let states = m.num_states();
        let phi = vec![true; states];
        let psi = m.labeling().states_with("down");
        group.bench_with_input(
            BenchmarkId::new("cluster/baseline_until_t24", states),
            &m,
            |b, m| {
                b.iter(|| {
                    mrmc_numerics::baseline::until_time_bounded(m, &phi, &psi, 24.0, 1e-9).unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cluster/steady_state", states),
            &m,
            |b, m| {
                b.iter(|| {
                    mrmc_ctmc::steady::steady_state_strongly_connected(
                        m.ctmc(),
                        mrmc_sparse::solver::SolverOptions::new().with_tolerance(1e-9),
                    )
                    .unwrap()
                });
            },
        );
    }

    // Linear-solver schemes: plain Gauss–Seidel vs the multicolor colored
    // schedule at several thread counts, on the unbounded-reachability
    // system of the largest cluster instance (the path `--solver` actually
    // dispatches; the specialized stationary sweep has no method switch).
    group.sample_size(10);
    {
        let m = cluster(&ClusterConfig::new(8));
        let embedded = m.ctmc().embedded_dtmc();
        // Φ-constrained until: the substochastic system `P[backbone_up U
        // down]` (paths leaving Φ are losses), which keeps the iteration
        // matrix a strict contraction.
        let phi = m.labeling().states_with("backbone_up");
        let psi = m.labeling().states_with("down");
        let solve = |options: mrmc_sparse::solver::SolverOptions| {
            mrmc_ctmc::reach::until_unbounded(embedded.probabilities(), &phi, &psi, options)
                .unwrap()
        };
        group.bench_with_input(BenchmarkId::new("solver/plain_gs", 1usize), &(), |b, _| {
            b.iter(|| solve(mrmc_sparse::solver::SolverOptions::new().with_tolerance(1e-9)));
        });
        for threads in [1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new("solver/colored_gs", threads),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        solve(
                            mrmc_sparse::solver::SolverOptions::new()
                                .with_tolerance(1e-9)
                                .with_method(mrmc_sparse::solver::SolverMethod::ColoredGaussSeidel)
                                .with_threads(threads),
                        )
                    });
                },
            );
        }
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
