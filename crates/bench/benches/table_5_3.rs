//! Criterion bench for Table 5.3: TMR(3) uniformization at constant
//! truncation probability `w = 1e-11`, one benchmark per mission time.

use mrmc_bench::harness::Criterion;
use mrmc_bench::tables;
use mrmc_bench::{criterion_group, criterion_main};
use mrmc_models::tmr::{tmr, TmrConfig};

fn bench(c: &mut Criterion) {
    let config = TmrConfig::classic();
    let m = tmr(&config);
    let mut group = c.benchmark_group("table_5_3_constant_w");
    group.sample_size(10);
    for t in [100.0, 300.0, 500.0] {
        group.bench_function(format!("t={t}"), |b| {
            b.iter(|| tables::tmr_until_row(&m, &config, t, 1e-11).probability);
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
