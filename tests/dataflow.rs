//! Property tests for qualitative precomputation and formula-driven
//! slicing: checking with slicing (the default) must agree with checking
//! the full state space (`--no-slicing`). When the certificate prunes
//! nothing (`slice_states_removed == 0`) the two runs are the same
//! computation and must agree **bitwise**; when it prunes, probabilities
//! must agree within the *sum* of the error budgets both runs report
//! (each run is within its own budget of the truth), and definite
//! verdicts must never contradict. The corpus covers the paper's models
//! and 32 seeded random MRMs, each at 1 and 4 threads, plus a mutation
//! corpus the independent certificate verifier must reject.

use mrmc::{CheckOptions, CheckOutcome, ModelChecker, Reduction, UntilEngine};
use mrmc_models::cluster::{cluster, ClusterConfig};
use mrmc_models::random::{random_mrm, RandomMrmConfig};
use mrmc_models::{tmr, wavelan, TmrConfig};
use mrmc_mrm::Mrm;

/// The total error the outcome admits on state `s`'s probability: the
/// budget when the engine accounts for it, the raw truncation bound
/// otherwise, zero for exact computations.
fn slack(o: &CheckOutcome, s: usize) -> f64 {
    if let Some(b) = o.budgets() {
        b[s].total()
    } else if let Some(e) = o.error_bounds() {
        e[s]
    } else {
        0.0
    }
}

/// Check every formula with and without slicing and compare outcomes.
/// Reduction is off on both sides so the comparison isolates slicing.
fn assert_slicing_agrees(name: &str, mrm: &Mrm, formulas: &[&str], options: CheckOptions) {
    let options = options.with_reduction(Reduction::Off);
    let sliced_checker = ModelChecker::new(mrm.clone(), options);
    let full_checker = ModelChecker::new(mrm.clone(), options.without_slicing());
    for text in formulas {
        let sliced = sliced_checker
            .check_str(text)
            .unwrap_or_else(|e| panic!("{name} `{text}` (sliced): {e}"));
        let full = full_checker
            .check_str(text)
            .unwrap_or_else(|e| panic!("{name} `{text}` (full): {e}"));
        assert_eq!(
            full.dataflow(),
            None,
            "{name} `{text}`: --no-slicing still ran the pre-pass"
        );

        let removed = sliced.dataflow().map_or(0, |d| d.slice_states_removed);
        let (sp, fp) = match (sliced.probabilities(), full.probabilities()) {
            (Some(s), Some(f)) => (s, f),
            (None, None) => continue,
            _ => panic!("{name} `{text}`: probability availability diverged"),
        };
        assert_eq!(sp.len(), fp.len(), "{name} `{text}`: vector lengths");

        if removed == 0 {
            // Nothing pruned: identical control flow, bitwise identical.
            for s in 0..sp.len() {
                assert_eq!(
                    sp[s].to_bits(),
                    fp[s].to_bits(),
                    "{name} `{text}` state {s}: unpruned sliced run must be bitwise \
                     identical ({} vs {})",
                    sp[s],
                    fp[s]
                );
            }
            assert_eq!(sliced.sat(), full.sat(), "{name} `{text}`: sat sets");
            assert_eq!(
                sliced.unknown(),
                full.unknown(),
                "{name} `{text}`: unknown sets"
            );
        } else {
            // Pruned: each run is within its own budget of the truth, so
            // the two may differ by at most the summed budgets. Budgets on
            // pruned states collapse to zero, which can flip a verdict
            // from unknown to definite — definite verdicts must still
            // never contradict each other.
            for s in 0..sp.len() {
                let tol = slack(&sliced, s) + slack(&full, s) + 1e-9;
                assert!(
                    (sp[s] - fp[s]).abs() <= tol,
                    "{name} `{text}` state {s}: |{} - {}| > {tol}",
                    sp[s],
                    fp[s]
                );
                let definite = |o: &CheckOutcome, s: usize| !o.unknown()[s];
                if definite(&sliced, s) && definite(&full, s) {
                    assert_eq!(
                        sliced.sat()[s],
                        full.sat()[s],
                        "{name} `{text}` state {s}: definite verdicts contradict"
                    );
                }
            }
        }
    }
}

fn thread_counts() -> [usize; 2] {
    [1, 4]
}

#[test]
fn tmr_sliced_runs_agree_with_full() {
    let mrm = tmr(&TmrConfig::classic());
    let formulas = [
        "P(> 0.99) [TT U allUp]",
        "P(> 0.1) [TT U failed]",
        "P(> 0.01) [allUp U[0,2] failed]",
        "P(< 0.05) [Sup U[0,2][0,10] failed]",
        "P(> 0.1) [TT U[0,1][0,10] failed]",
    ];
    for threads in thread_counts() {
        assert_slicing_agrees(
            "tmr",
            &mrm,
            &formulas,
            CheckOptions::new().with_threads(threads),
        );
    }
}

#[test]
fn cluster_sliced_runs_agree_with_full() {
    let mrm = cluster(&ClusterConfig::new(4));
    let formulas = [
        "P(>= 0.0) [premium U down]",
        "P(>= 0.1) [TT U[0,1] down]",
        "P(>= 0.0) [backbone_up U[0,1][0,5] down]",
    ];
    for threads in thread_counts() {
        assert_slicing_agrees(
            "cluster",
            &mrm,
            &formulas,
            CheckOptions::new().with_threads(threads),
        );
    }
}

#[test]
fn wavelan_sliced_runs_agree_with_full() {
    let mrm = wavelan();
    let formulas = [
        "P(> 0.01) [TT U busy]",
        "P(> 0.01) [TT U[0,0.5][0,2] busy]",
        "P(> 0.01) [idle U[0,0.5][0,2] busy]",
    ];
    for threads in thread_counts() {
        assert_slicing_agrees(
            "wavelan",
            &mrm,
            &formulas,
            CheckOptions::new().with_threads(threads),
        );
    }
}

#[test]
fn discretization_sliced_runs_agree_with_full() {
    // The grid engine's slicing skips certain-zero start states outright;
    // phi-restricted invariants make that set nonempty on these models.
    let formulas = ["P(> 0.01) [Sup U[0,1][0,10] failed]"];
    let mrm = tmr(&TmrConfig::classic());
    for threads in thread_counts() {
        assert_slicing_agrees(
            "tmr/d",
            &mrm,
            &formulas,
            CheckOptions::new()
                .with_engine(UntilEngine::discretization(0.05))
                .with_threads(threads),
        );
    }
}

#[test]
fn random_models_sliced_runs_agree_with_full() {
    // 32 seeded random MRMs; `s0 U goal` keeps the invariant tight so the
    // certain-zero fixpoint actually prunes on many seeds.
    let config = RandomMrmConfig::default();
    let formulas = [
        "P(> 0.2) [TT U goal]",
        "P(> 0.2) [s0 U goal]",
        "P(> 0.2) [TT U[0,1] goal]",
        "P(< 0.5) [s1 U[0,1][0,4] goal]",
    ];
    for seed in 0..32 {
        let mrm = random_mrm(seed, &config);
        for threads in thread_counts() {
            assert_slicing_agrees(
                &format!("random-{seed}"),
                &mrm,
                &formulas,
                CheckOptions::new().with_threads(threads),
            );
        }
    }
}

#[test]
fn slicing_reports_dataflow_and_no_slicing_suppresses_it() {
    let mrm = tmr(&TmrConfig::classic());
    let sliced = ModelChecker::new(mrm.clone(), CheckOptions::new())
        .check_str("P(> 0.99) [TT U allUp]")
        .unwrap();
    let d = sliced.dataflow().expect("sliced until reports dataflow");
    assert!(d.scc_count >= 1);
    assert_eq!(
        d.slice_states_removed,
        d.qual_zero_states + d.qual_one_states
            - mrm
                .labeling()
                .states_with("allUp")
                .iter()
                .filter(|&&b| b)
                .count(),
        "removed = |zero ∩ phi| + |one \\ psi| with phi = TT"
    );
    let full = ModelChecker::new(mrm, CheckOptions::new().without_slicing())
        .check_str("P(> 0.99) [TT U allUp]")
        .unwrap();
    assert_eq!(full.dataflow(), None);
}

#[test]
fn verifier_rejects_mutated_certificates() {
    // Eight distinct corruptions of a freshly computed (and verified)
    // certificate, each violating a different invariant the independent
    // verifier re-checks. None may slip through. The chain is built so
    // both qualitative sets are nontrivial and known exactly:
    // 0:a -> 1:a -> {2:goal, 3:a-trap}, 4:b absorbing.
    // zero = {3, 4}, one = {2}.
    use mrmc_ctmc::CtmcBuilder;
    let mut b = CtmcBuilder::new(5);
    b.transition(0, 1, 1.0);
    b.transition(1, 2, 1.0).transition(1, 3, 1.0);
    b.label(0, "a").label(1, "a").label(3, "a");
    b.label(2, "goal");
    b.label(4, "b");
    let mrm = Mrm::without_rewards(b.build().unwrap());
    let phi = mrm.labeling().states_with("a");
    let psi = mrm.labeling().states_with("goal");
    let base = mrmc::dataflow::qualitative_until(&mrm, &phi, &psi, true);
    base.verify(&mrm).expect("the honest certificate verifies");
    assert_eq!(base.zero, [false, false, false, true, true]);
    assert_eq!(base.one, [false, false, true, false, false]);

    type Mutation = (
        &'static str,
        fn(&mut mrmc::dataflow::QualitativeCertificate),
    );
    let mutations: [Mutation; 8] = [
        ("zero claims the goal state", |c| c.zero[2] = true),
        ("zero not successor-closed", |c| c.zero[0] = true),
        ("zero and one overlap", |c| c.one[3] = true),
        ("one without the invariant", |c| {
            c.zero[4] = false;
            c.one[4] = true;
        }),
        ("zero vector truncated", |c| {
            c.zero.pop();
        }),
        ("one vector truncated", |c| {
            c.one.pop();
        }),
        ("spurious certain-one claim on the trap", |c| {
            c.zero[3] = false;
            c.one[3] = true;
        }),
        ("bounded cert claims one beyond the goal", |c| {
            c.unbounded = false;
            c.one[1] = true;
        }),
    ];
    for (what, mutate) in mutations {
        let mut cert = base.clone();
        mutate(&mut cert);
        assert!(
            cert.verify(&mrm).is_err(),
            "mutated certificate ({what}) passed verification"
        );
    }
}
