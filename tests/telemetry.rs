//! The telemetry determinism contract, tested end to end: checking any
//! model with any recorder installed — the no-op sink, the in-memory
//! metrics aggregator, or the JSONL trace writer — yields outcomes
//! bit-for-bit identical to an uninstrumented run, at every thread count.
//!
//! This is the workspace's load-bearing guarantee that instrumentation is
//! observation-only (`mrmc-obs` crate docs): `CheckOutcome` derives
//! `PartialEq`, so the assertions below compare satisfying sets, unknown
//! sets, probabilities, error bounds, and full error budgets exactly.

use std::sync::Arc;

use mrmc::{CheckOptions, CheckOutcome, ModelChecker};
use mrmc_mrm::Mrm;
use mrmc_obs::{JsonlTraceRecorder, MetricsRecorder, NullRecorder, ProfileNode, ProfileRecorder};

use mrmc_models::cluster::{cluster, ClusterConfig};
use mrmc_models::random::{random_mrm, RandomMrmConfig};
use mrmc_models::tmr::{tmr, TmrConfig};
use mrmc_models::wavelan::wavelan;

fn random_cfg() -> RandomMrmConfig {
    RandomMrmConfig {
        states: 6,
        extra_transitions_per_state: 1.0,
        max_rate: 2.0,
        reward_levels: vec![0.0, 1.0, 3.0],
        impulse_levels: vec![0.0, 0.5],
        goal_fraction: 0.3,
    }
}

fn check(mrm: &Mrm, threads: usize, formula: &str) -> CheckOutcome {
    let checker = ModelChecker::new(mrm.clone(), CheckOptions::new().with_threads(threads));
    checker
        .check_str(formula)
        .unwrap_or_else(|e| panic!("`{formula}` failed: {e}"))
}

/// A profile tree node's children must never account for more time than
/// the node itself, and self time is non-negative by construction.
fn assert_profile_invariants(node: &ProfileNode, ctx: &str) {
    let child_total: f64 = node.children.iter().map(|c| c.total_s).sum();
    assert!(
        child_total <= node.total_s + 1e-9,
        "{ctx}: phase `{}` children total {child_total} exceeds parent total {}",
        node.name,
        node.total_s
    );
    assert!(node.self_s >= 0.0, "{ctx}: negative self time");
    for child in &node.children {
        assert_profile_invariants(child, ctx);
    }
}

/// Check every formula on `mrm` five ways — uninstrumented, under the
/// null sink, under the metrics aggregator, under the wall-time profiler,
/// and under a trace writer — at 1 and 4 worker threads, asserting
/// bitwise-identical outcomes.
fn assert_recording_is_invisible(name: &str, mrm: &Mrm, formulas: &[&str]) {
    for threads in [1usize, 4] {
        for (i, formula) in formulas.iter().enumerate() {
            let ctx = format!("model {name}, threads {threads}, formula `{formula}`");
            let plain = check(mrm, threads, formula);

            let nulled =
                mrmc_obs::with_recorder(Arc::new(NullRecorder), || check(mrm, threads, formula));
            assert_eq!(plain, nulled, "null recorder changed the outcome: {ctx}");

            let metrics = Arc::new(MetricsRecorder::new());
            let metered = mrmc_obs::with_recorder(metrics.clone(), || check(mrm, threads, formula));
            assert_eq!(
                plain, metered,
                "metrics recorder changed the outcome: {ctx}"
            );

            let profiler = Arc::new(ProfileRecorder::new());
            let profiled =
                mrmc_obs::with_recorder(profiler.clone(), || check(mrm, threads, formula));
            assert_eq!(
                plain, profiled,
                "profile recorder changed the outcome: {ctx}"
            );
            // While we're here: the reconstructed tree is structurally
            // sound — engines always emit spans, and a child phase can
            // never out-total its parent.
            let report = profiler.report();
            assert!(!report.roots.is_empty(), "no spans recorded: {ctx}");
            for root in &report.roots {
                assert_profile_invariants(root, &ctx);
            }

            let path = std::env::temp_dir().join(format!(
                "mrmc-telemetry-{name}-{threads}-{i}-{}.jsonl",
                std::process::id()
            ));
            let trace = Arc::new(JsonlTraceRecorder::create(&path).expect("create trace"));
            let traced = mrmc_obs::with_recorder(trace.clone(), || check(mrm, threads, formula));
            drop(trace);
            assert_eq!(plain, traced, "trace recorder changed the outcome: {ctx}");

            // While we're here: the trace is well-formed JSONL with
            // consecutive sequence numbers.
            let text = std::fs::read_to_string(&path).expect("trace written");
            let lines: Vec<&str> = text.lines().collect();
            assert!(!lines.is_empty(), "empty trace: {ctx}");
            for (seq, line) in lines.iter().enumerate() {
                assert!(
                    line.starts_with(&format!("{{\"seq\":{seq},\"kind\":\""))
                        && line.ends_with('}'),
                    "malformed trace line {seq} ({ctx}): {line}"
                );
            }
            std::fs::remove_file(&path).ok();
        }
    }
}

#[test]
fn recording_never_changes_outcomes_on_the_paper_models() {
    let tmr_model = tmr(&TmrConfig::classic());
    assert_recording_is_invisible(
        "tmr",
        &tmr_model,
        &[
            "P(> 0.1) [TT U[0,1][0,10] failed]",
            "P(> 0.01) [allUp U[0,2] failed]",
            "S(> 0.5) (allUp)",
        ],
    );

    let cluster_model = cluster(&ClusterConfig::new(2));
    assert_recording_is_invisible(
        "cluster",
        &cluster_model,
        &[
            "P(>= 0.1) [TT U[0,1] down]",
            "P(>= 0.0) [backbone_up U[0,1][0,5] down]",
        ],
    );

    let wavelan_model = wavelan();
    assert_recording_is_invisible(
        "wavelan",
        &wavelan_model,
        &["P(> 0.01) [TT U[0,0.5][0,2] busy]", "S(> 0.1) (idle)"],
    );
}

#[test]
fn recording_never_changes_outcomes_on_random_models() {
    for seed in 0u64..8 {
        let m = random_mrm(seed, &random_cfg());
        assert_recording_is_invisible(
            &format!("random{seed}"),
            &m,
            &["P(< 0.5) [TT U[0,1][0,4] goal]", "goal"],
        );
    }
}

#[test]
fn omega_term_cache_reuses_tables_across_adaptive_runs() {
    use mrmc_numerics::adaptive::{uniformization_until, AdaptiveOptions};
    use mrmc_numerics::omega::{with_omega_cache, OmegaTermCache};
    use mrmc_numerics::uniformization::UniformOptions;

    let m = wavelan();
    let phi = m.labeling().states_with("idle");
    let psi = m.labeling().states_with("busy");

    let run = |eps: f64| {
        let metrics = Arc::new(MetricsRecorder::new());
        let res = mrmc_obs::with_recorder(metrics.clone(), || {
            uniformization_until(
                &m,
                &phi,
                &psi,
                2.0,
                2000.0,
                2,
                UniformOptions::new(),
                AdaptiveOptions::new(eps),
            )
            .expect("adaptive run")
        });
        (res, metrics.snapshot())
    };

    // Standalone runs: each driver call self-installs a fresh per-run cache.
    let (base_loose, _) = run(1e-3);
    let (base_tight, tight_alone) = run(1e-6);

    // One externally installed cache shared by both tolerances: the tight
    // run re-generates most of the loose run's path classes, so its Omega
    // requests hit the shared cache.
    let cache = Arc::new(OmegaTermCache::new());
    let (loose_shared, tight_shared) = with_omega_cache(cache.clone(), || (run(1e-3), run(1e-6)));
    let (shared_loose, _) = loose_shared;
    let (shared_tight, tight_shared_metrics) = tight_shared;

    // Caching is exact: outcomes are bit-identical to the uncached runs.
    assert_eq!(
        base_loose.probability.to_bits(),
        shared_loose.probability.to_bits()
    );
    assert_eq!(
        base_tight.probability.to_bits(),
        shared_tight.probability.to_bits()
    );
    assert_eq!(
        base_tight.budget.total().to_bits(),
        shared_tight.budget.total().to_bits()
    );

    // The warm run performed strictly fewer table computations than the
    // same tolerance standalone, and said so in the telemetry.
    assert!(
        tight_shared_metrics.omega_requests < tight_alone.omega_requests,
        "shared-cache run must compute fewer tables: {} vs {}",
        tight_shared_metrics.omega_requests,
        tight_alone.omega_requests
    );
    assert!(cache.hits() > 0, "shared cache saw no hits");
    assert!(
        tight_shared_metrics.counters[mrmc_obs::counters::OMEGA_CACHE_HITS] > 0,
        "{:?}",
        tight_shared_metrics.counters
    );
}

#[test]
fn metrics_reflect_the_work_the_engines_did() {
    // Not just invisible — the aggregator must actually see the engine
    // events: path exploration for uniformization, the span timers for
    // every phase.
    let m = tmr(&TmrConfig::classic());
    let checker = ModelChecker::new(m, CheckOptions::new());
    let metrics = Arc::new(MetricsRecorder::new());
    mrmc_obs::with_recorder(metrics.clone(), || {
        checker
            .check_str("P(> 0.1) [TT U[0,1][0,10] failed]")
            .unwrap();
    });
    let snap = metrics.snapshot();
    assert!(snap.paths_generated > 0, "{snap:?}");
    assert!(snap.nodes_explored >= snap.paths_generated, "{snap:?}");
    assert!(snap.phases.contains_key("engine"), "{snap:?}");
    assert!(snap.phases.contains_key("preflight"), "{snap:?}");
}
