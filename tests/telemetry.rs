//! The telemetry determinism contract, tested end to end: checking any
//! model with any recorder installed — the no-op sink, the in-memory
//! metrics aggregator, or the JSONL trace writer — yields outcomes
//! bit-for-bit identical to an uninstrumented run, at every thread count.
//!
//! This is the workspace's load-bearing guarantee that instrumentation is
//! observation-only (`mrmc-obs` crate docs): `CheckOutcome` derives
//! `PartialEq`, so the assertions below compare satisfying sets, unknown
//! sets, probabilities, error bounds, and full error budgets exactly.

use std::sync::Arc;

use mrmc::{CheckOptions, CheckOutcome, ModelChecker};
use mrmc_mrm::Mrm;
use mrmc_obs::{JsonlTraceRecorder, MetricsRecorder, NullRecorder};

use mrmc_models::cluster::{cluster, ClusterConfig};
use mrmc_models::random::{random_mrm, RandomMrmConfig};
use mrmc_models::tmr::{tmr, TmrConfig};
use mrmc_models::wavelan::wavelan;

fn random_cfg() -> RandomMrmConfig {
    RandomMrmConfig {
        states: 6,
        extra_transitions_per_state: 1.0,
        max_rate: 2.0,
        reward_levels: vec![0.0, 1.0, 3.0],
        impulse_levels: vec![0.0, 0.5],
        goal_fraction: 0.3,
    }
}

fn check(mrm: &Mrm, threads: usize, formula: &str) -> CheckOutcome {
    let checker = ModelChecker::new(mrm.clone(), CheckOptions::new().with_threads(threads));
    checker
        .check_str(formula)
        .unwrap_or_else(|e| panic!("`{formula}` failed: {e}"))
}

/// Check every formula on `mrm` four ways — uninstrumented, under the
/// null sink, under the metrics aggregator, and under a trace writer —
/// at 1 and 4 worker threads, asserting bitwise-identical outcomes.
fn assert_recording_is_invisible(name: &str, mrm: &Mrm, formulas: &[&str]) {
    for threads in [1usize, 4] {
        for (i, formula) in formulas.iter().enumerate() {
            let ctx = format!("model {name}, threads {threads}, formula `{formula}`");
            let plain = check(mrm, threads, formula);

            let nulled =
                mrmc_obs::with_recorder(Arc::new(NullRecorder), || check(mrm, threads, formula));
            assert_eq!(plain, nulled, "null recorder changed the outcome: {ctx}");

            let metrics = Arc::new(MetricsRecorder::new());
            let metered = mrmc_obs::with_recorder(metrics.clone(), || check(mrm, threads, formula));
            assert_eq!(
                plain, metered,
                "metrics recorder changed the outcome: {ctx}"
            );

            let path = std::env::temp_dir().join(format!(
                "mrmc-telemetry-{name}-{threads}-{i}-{}.jsonl",
                std::process::id()
            ));
            let trace = Arc::new(JsonlTraceRecorder::create(&path).expect("create trace"));
            let traced = mrmc_obs::with_recorder(trace.clone(), || check(mrm, threads, formula));
            drop(trace);
            assert_eq!(plain, traced, "trace recorder changed the outcome: {ctx}");

            // While we're here: the trace is well-formed JSONL with
            // consecutive sequence numbers.
            let text = std::fs::read_to_string(&path).expect("trace written");
            let lines: Vec<&str> = text.lines().collect();
            assert!(!lines.is_empty(), "empty trace: {ctx}");
            for (seq, line) in lines.iter().enumerate() {
                assert!(
                    line.starts_with(&format!("{{\"seq\":{seq},\"kind\":\""))
                        && line.ends_with('}'),
                    "malformed trace line {seq} ({ctx}): {line}"
                );
            }
            std::fs::remove_file(&path).ok();
        }
    }
}

#[test]
fn recording_never_changes_outcomes_on_the_paper_models() {
    let tmr_model = tmr(&TmrConfig::classic());
    assert_recording_is_invisible(
        "tmr",
        &tmr_model,
        &[
            "P(> 0.1) [TT U[0,1][0,10] failed]",
            "P(> 0.01) [allUp U[0,2] failed]",
            "S(> 0.5) (allUp)",
        ],
    );

    let cluster_model = cluster(&ClusterConfig::new(2));
    assert_recording_is_invisible(
        "cluster",
        &cluster_model,
        &[
            "P(>= 0.1) [TT U[0,1] down]",
            "P(>= 0.0) [backbone_up U[0,1][0,5] down]",
        ],
    );

    let wavelan_model = wavelan();
    assert_recording_is_invisible(
        "wavelan",
        &wavelan_model,
        &["P(> 0.01) [TT U[0,0.5][0,2] busy]", "S(> 0.1) (idle)"],
    );
}

#[test]
fn recording_never_changes_outcomes_on_random_models() {
    for seed in 0u64..8 {
        let m = random_mrm(seed, &random_cfg());
        assert_recording_is_invisible(
            &format!("random{seed}"),
            &m,
            &["P(< 0.5) [TT U[0,1][0,4] goal]", "goal"],
        );
    }
}

#[test]
fn metrics_reflect_the_work_the_engines_did() {
    // Not just invisible — the aggregator must actually see the engine
    // events: path exploration for uniformization, the span timers for
    // every phase.
    let m = tmr(&TmrConfig::classic());
    let checker = ModelChecker::new(m, CheckOptions::new());
    let metrics = Arc::new(MetricsRecorder::new());
    mrmc_obs::with_recorder(metrics.clone(), || {
        checker
            .check_str("P(> 0.1) [TT U[0,1][0,10] failed]")
            .unwrap();
    });
    let snap = metrics.snapshot();
    assert!(snap.paths_generated > 0, "{snap:?}");
    assert!(snap.nodes_explored >= snap.paths_generated, "{snap:?}");
    assert!(snap.phases.contains_key("engine"), "{snap:?}");
    assert!(snap.phases.contains_key("preflight"), "{snap:?}");
}
