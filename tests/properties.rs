//! Property-style integration tests over randomly generated (but valid)
//! reward models.
//!
//! These were originally `proptest` properties; they now run each law over a
//! fixed range of deterministic seeds (the in-tree generator in
//! `mrmc_models::random` is reproducible per seed), so the suite is hermetic
//! and every failure names the seed that produced it.

use mrmc::{CheckOptions, ModelChecker};
use mrmc_models::random::{random_mrm, RandomMrmConfig};
use mrmc_numerics::uniformization::{until_probability, UniformOptions};

fn small_cfg() -> RandomMrmConfig {
    RandomMrmConfig {
        states: 5,
        extra_transitions_per_state: 1.0,
        max_rate: 2.0,
        reward_levels: vec![0.0, 1.0, 3.0],
        impulse_levels: vec![0.0, 0.5],
        goal_fraction: 0.3,
    }
}

#[test]
fn until_probability_is_monotone_in_t_and_r() {
    for seed in 0u64..16 {
        let m = random_mrm(seed, &small_cfg());
        let phi = vec![true; m.num_states()];
        let psi = m.labeling().states_with("goal");
        let opts = UniformOptions::new().with_truncation(1e-9);

        let mut prev = 0.0;
        for t in [0.25, 0.5, 1.0] {
            let p = until_probability(&m, &phi, &psi, t, 10.0, 0, opts).unwrap();
            assert!(
                p.probability + p.error_bound + 1e-9 >= prev,
                "seed {seed}, t = {t}: {} (+{}) < {prev}",
                p.probability,
                p.error_bound
            );
            prev = p.probability - p.error_bound;
        }

        let mut prev = 0.0;
        for r in [0.5, 2.0, 8.0] {
            let p = until_probability(&m, &phi, &psi, 0.5, r, 0, opts).unwrap();
            assert!(p.probability + p.error_bound + 1e-9 >= prev, "seed {seed}");
            prev = p.probability - p.error_bound;
        }
    }
}

#[test]
fn formula_negation_complements_sat() {
    for seed in 0u64..16 {
        let m = random_mrm(seed, &small_cfg());
        let checker = ModelChecker::new(m, CheckOptions::new());
        let pos = checker.check_str("goal").unwrap();
        let neg = checker.check_str("!goal").unwrap();
        for s in 0..pos.sat().len() {
            assert_eq!(pos.holds_in(s), !neg.holds_in(s), "seed {seed}, state {s}");
        }
    }
}

#[test]
fn steady_state_probabilities_form_a_distribution() {
    for seed in 0u64..16 {
        let m = random_mrm(seed, &small_cfg());
        let n = m.num_states();
        let checker = ModelChecker::new(m, CheckOptions::new());
        // π(s, Sat(tt)) = 1 for every s.
        let out = checker.check_str("S(>= 0.999999) TT").unwrap();
        assert_eq!(out.count(), n, "seed {seed}");
    }
}

#[test]
fn probability_bounds_partition_the_state_space() {
    // Sat(P(<p)[φ]) and Sat(P(>=p)[φ]) partition S.
    for seed in 0u64..16 {
        let m = random_mrm(seed, &small_cfg());
        let checker = ModelChecker::new(m, CheckOptions::new());
        let lt = checker.check_str("P(< 0.5) [TT U[0,1] goal]").unwrap();
        let ge = checker.check_str("P(>= 0.5) [TT U[0,1] goal]").unwrap();
        for s in 0..lt.sat().len() {
            assert!(lt.holds_in(s) ^ ge.holds_in(s), "seed {seed}, state {s}");
        }
    }
}

#[test]
fn next_probabilities_stay_in_unit_interval() {
    for seed in 0u64..16 {
        let m = random_mrm(seed, &small_cfg());
        let checker = ModelChecker::new(m, CheckOptions::new());
        let out = checker.check_str("P(>= 0) [X[0,2][0,5] goal]").unwrap();
        for &p in out.probabilities().unwrap() {
            assert!((0.0..=1.0).contains(&p), "seed {seed}: {p}");
        }
        // op = >= 0 is a tautology over probabilities.
        assert_eq!(out.count(), out.sat().len(), "seed {seed}");
    }
}

#[test]
fn error_bound_shrinks_with_truncation() {
    for seed in 0u64..16 {
        let m = random_mrm(seed, &small_cfg());
        let phi = vec![true; m.num_states()];
        let psi = m.labeling().states_with("goal");
        let loose = until_probability(
            &m,
            &phi,
            &psi,
            0.5,
            5.0,
            0,
            UniformOptions::new().with_truncation(1e-4),
        )
        .unwrap();
        let tight = until_probability(
            &m,
            &phi,
            &psi,
            0.5,
            5.0,
            0,
            UniformOptions::new().with_truncation(1e-10),
        )
        .unwrap();
        assert!(
            tight.error_bound <= loose.error_bound + 1e-15,
            "seed {seed}"
        );
        // Results agree within the looser bound.
        assert!(
            (tight.probability - loose.probability).abs() <= loose.error_bound + 1e-12,
            "seed {seed}"
        );
    }
}

/// Budget monotonicity: tightening the engine knob (`w` for
/// uniformization, `d` for discretization) never increases the reported
/// total error budget. Discretization runs on the a-priori bound here
/// (`without_error_estimate`), which is exactly monotone in `d`; the
/// a-posteriori Richardson estimate is only asymptotically so.
#[test]
fn budget_is_monotone_in_the_engine_knob() {
    use mrmc_numerics::discretization::{self, DiscretizationOptions};
    for seed in 0u64..12 {
        let m = random_mrm(seed, &small_cfg());
        let phi = vec![true; m.num_states()];
        let psi = m.labeling().states_with("goal");

        let mut prev = f64::INFINITY;
        for w in [1e-4, 1e-7, 1e-10] {
            let r = until_probability(
                &m,
                &phi,
                &psi,
                0.5,
                5.0,
                0,
                UniformOptions::new().with_truncation(w),
            )
            .unwrap();
            assert!(
                r.budget.total() <= prev + 1e-15,
                "seed {seed}, w = {w}: {} > {prev}",
                r.budget.total()
            );
            prev = r.budget.total();
        }

        let mut prev = f64::INFINITY;
        for d in [1.0 / 16.0, 1.0 / 32.0, 1.0 / 64.0] {
            let r = discretization::until_probability(
                &m,
                &phi,
                &psi,
                0.5,
                5.0,
                0,
                DiscretizationOptions::with_step(d).without_error_estimate(),
            )
            .unwrap();
            assert!(
                r.budget.total() <= prev + 1e-15,
                "seed {seed}, d = {d}: {} > {prev}",
                r.budget.total()
            );
            prev = r.budget.total();
        }
    }
}

/// The budget's named components sum (bitwise) to its total, for both
/// reward-aware engines on random models.
#[test]
fn budget_components_sum_to_total() {
    use mrmc_numerics::discretization::{self, DiscretizationOptions};
    for seed in 0u64..12 {
        let m = random_mrm(seed, &small_cfg());
        let phi = vec![true; m.num_states()];
        let psi = m.labeling().states_with("goal");

        let uni = until_probability(
            &m,
            &phi,
            &psi,
            0.5,
            5.0,
            0,
            UniformOptions::new().with_truncation(1e-8),
        )
        .unwrap();
        let disc = discretization::until_probability(
            &m,
            &phi,
            &psi,
            0.5,
            5.0,
            0,
            DiscretizationOptions::with_step(1.0 / 32.0),
        )
        .unwrap();
        for (what, b) in [
            ("uniformization", uni.budget),
            ("discretization", disc.budget),
        ] {
            assert!(b.is_well_formed(), "seed {seed} ({what})");
            let sum: f64 = b.components().iter().map(|&(_, v)| v).sum();
            assert_eq!(
                sum.to_bits(),
                b.total().to_bits(),
                "seed {seed} ({what}): components sum {sum} != total {}",
                b.total()
            );
        }
    }
}

/// Two adaptive runs at different tolerances describe the same number:
/// their results differ by at most the larger ε (each is within its own
/// reported budget of the true probability).
#[test]
fn adaptive_results_agree_across_tolerances() {
    use mrmc_numerics::adaptive::{self, AdaptiveOptions};
    for seed in 0u64..8 {
        let m = random_mrm(seed, &small_cfg());
        let phi = vec![true; m.num_states()];
        let psi = m.labeling().states_with("goal");

        let loose = adaptive::uniformization_until(
            &m,
            &phi,
            &psi,
            0.5,
            5.0,
            0,
            UniformOptions::new(),
            AdaptiveOptions::new(1e-3),
        )
        .unwrap();
        let tight = adaptive::uniformization_until(
            &m,
            &phi,
            &psi,
            0.5,
            5.0,
            0,
            UniformOptions::new(),
            AdaptiveOptions::new(1e-6),
        )
        .unwrap();
        assert!(loose.budget.total() <= 1e-3, "seed {seed}");
        assert!(tight.budget.total() <= 1e-6, "seed {seed}");
        assert!(
            (loose.probability - tight.probability).abs()
                <= loose.budget.total() + tight.budget.total(),
            "seed {seed}: {} vs {}",
            loose.probability,
            tight.probability
        );
    }
}

/// The exact path-level until semantics agree with the inline trajectory
/// predicate used by the restricted estimator: estimating via sampled
/// `TimedPath`s and via `estimate_until` must coincide statistically on
/// `[0, t]`/`[0, r]` bounds.
#[test]
fn path_semantics_consistent_with_inline_simulation() {
    use mrmc_csrl::Interval;
    use mrmc_numerics::monte_carlo::{estimate_until, estimate_until_general, SimulationOptions};
    for seed in 0u64..12 {
        let m = random_mrm(seed, &small_cfg());
        let phi = vec![true; m.num_states()];
        let psi = m.labeling().states_with("goal");
        let opts = SimulationOptions::with_samples(8_000).with_seed(seed);
        let a = estimate_until(&m, &phi, &psi, 0.8, 5.0, 0, opts).unwrap();
        let b = estimate_until_general(
            &m,
            &phi,
            &psi,
            &Interval::upto(0.8),
            &Interval::upto(5.0),
            0,
            opts,
        )
        .unwrap();
        let tol = 4.0 * (a.std_error + b.std_error) + 0.01;
        assert!(
            (a.mean - b.mean).abs() <= tol,
            "seed {seed}: {} vs {}",
            a.mean,
            b.mean
        );
    }
}

/// Model files round-trip for arbitrary generated models.
#[test]
fn io_roundtrip_on_random_models() {
    use mrmc_mrm::io::{self, ModelFiles};
    for seed in 0u64..12 {
        let m = random_mrm(seed, &small_cfg());
        let files = ModelFiles {
            tra: io::write_tra(&m),
            lab: io::write_lab(&m),
            rewr: io::write_rewr(&m),
            rewi: io::write_rewi(&m),
        };
        let back = files.assemble().unwrap();
        assert_eq!(back, m, "seed {seed}");
    }
}

/// Expected reward from uniformization matches simulation on random models.
#[test]
fn expected_reward_cross_check() {
    use mrmc_numerics::expected::expected_accumulated_reward_from;
    use mrmc_numerics::monte_carlo::{estimate_expected_reward, SimulationOptions};
    for seed in 0u64..8 {
        let m = random_mrm(seed, &small_cfg());
        let exact = expected_accumulated_reward_from(&m, 0, 1.0, 1e-10).unwrap();
        let sim = estimate_expected_reward(
            &m,
            1.0,
            0,
            SimulationOptions::with_samples(12_000).with_seed(seed),
        )
        .unwrap();
        assert!(
            sim.is_consistent_with(exact, 5.0),
            "seed {seed}: exact {exact} vs sim {} ± {}",
            sim.mean,
            sim.std_error
        );
    }
}

/// Definition 4.1 laws on random models: idempotence and composition by
/// union.
#[test]
fn make_absorbing_laws() {
    use mrmc_mrm::transform::make_absorbing;
    for seed in 0u64..24 {
        let m = random_mrm(seed, &small_cfg());
        let goal = m.labeling().states_with("goal");
        let s0 = m.labeling().states_with("s0");

        let once = make_absorbing(&m, &goal).unwrap();
        let twice = make_absorbing(&once, &goal).unwrap();
        assert_eq!(&once, &twice, "seed {seed}");

        let union: Vec<bool> = goal.iter().zip(&s0).map(|(&a, &b)| a || b).collect();
        let sequential = make_absorbing(&once, &s0).unwrap();
        let joint = make_absorbing(&m, &union).unwrap();
        assert_eq!(sequential, joint, "seed {seed}");
    }
}

/// The absorbing transformation leaves until probabilities invariant (the
/// engine applies it internally, so applying it beforehand must change
/// nothing) — the computational content of Theorem 4.1.
#[test]
fn until_invariant_under_pre_absorption() {
    use mrmc_mrm::transform::make_absorbing;
    use mrmc_numerics::baseline;
    for seed in 0u64..16 {
        let m = random_mrm(seed, &small_cfg());
        let phi = vec![true; m.num_states()];
        let psi = m.labeling().states_with("goal");
        let absorb: Vec<bool> = phi.iter().zip(&psi).map(|(&p, &q)| !p || q).collect();
        let pre = make_absorbing(&m, &absorb).unwrap();

        let a = baseline::until_time_bounded(&m, &phi, &psi, 0.7, 1e-11).unwrap();
        let b = baseline::until_time_bounded(&pre, &phi, &psi, 0.7, 1e-11).unwrap();
        for (s, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!((x - y).abs() < 1e-9, "seed {seed}, state {s}: {x} vs {y}");
        }
    }
}

/// Uniformization-rate invariance: transient distributions agree for
/// different admissible Λ (random models, seed-derived horizon).
#[test]
fn transient_is_lambda_invariant() {
    use mrmc_ctmc::poisson::FoxGlynn;
    for seed in 0u64..16 {
        let t = 0.1 + 1.9 * (seed as f64 / 16.0);
        let m = random_mrm(seed, &small_cfg());
        let n = m.num_states();
        let mut initial = vec![0.0; n];
        initial[0] = 1.0;

        let run = |lambda: f64| -> Vec<f64> {
            let (uni, l) = m.ctmc().uniformized(Some(lambda)).unwrap();
            let fg = FoxGlynn::new(l * t, 1e-12);
            let mut v = initial.clone();
            let mut acc = vec![0.0; n];
            for step in 0..=fg.right() {
                if step >= fg.left() {
                    let w = fg.weights()[(step - fg.left()) as usize];
                    for (a, x) in acc.iter_mut().zip(&v) {
                        *a += w * x;
                    }
                }
                if step < fg.right() {
                    v = uni.probabilities().vec_mul(&v);
                }
            }
            acc
        };
        let max_exit = m
            .ctmc()
            .exit_rates()
            .iter()
            .fold(0.0_f64, |a, &b| a.max(b))
            .max(1e-9);
        let p1 = run(max_exit);
        let p2 = run(3.0 * max_exit);
        for (s, (x, y)) in p1.iter().zip(&p2).enumerate() {
            assert!((x - y).abs() < 1e-8, "seed {seed}, state {s}: {x} vs {y}");
        }
    }
}

/// Witnesses found by the diagnostic search are genuine: they validate
/// against the model, end in Ψ, traverse only Φ-states before, and their
/// probability is the product of embedded branching probabilities.
#[test]
fn witnesses_are_genuine() {
    use mrmc::witness::most_probable_witness;
    for seed in 0u64..24 {
        let m = random_mrm(seed, &small_cfg());
        let phi: Vec<bool> = m
            .labeling()
            .states_with("goal")
            .iter()
            .map(|&g| !g)
            .collect(); // Φ = ¬goal
        let psi = m.labeling().states_with("goal");
        if let Some(w) = most_probable_witness(&m, &phi, &psi, 0).unwrap() {
            w.timed.validate_in(&m).unwrap();
            let last = *w.states.last().unwrap();
            assert!(psi[last], "seed {seed}");
            for &s in &w.states[..w.states.len() - 1] {
                assert!(phi[s], "seed {seed}: intermediate state {s} violates Φ");
            }
            assert!(w.probability > 0.0 && w.probability <= 1.0, "seed {seed}");
        }
    }
}
