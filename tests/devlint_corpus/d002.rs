// virtual-path: crates/core/src/d002.rs
// expect: D002 D002
//
// Wall-clock reads outside the bench/obs allowlist fire D002, once per
// offending line; test modules are exempt. Not compiled — scanned by
// the devlint corpus test under the virtual path above.

fn measures_in_a_result_path() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos()
}

fn reads_the_system_clock() -> bool {
    std::time::SystemTime::now().elapsed().is_ok()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_exempt() {
        let _ = std::time::Instant::now();
    }
}
