// virtual-path: crates/numerics/src/d001.rs
// expect: D001 D001
//
// Hash-order iteration in an engine crate fires D001; keyed lookup on
// the same container does not. Not compiled — scanned by the devlint
// corpus test under the virtual path above.
use std::collections::HashMap;

fn keyed_access_is_fine(weights: &HashMap<u64, f64>) -> Option<f64> {
    weights.get(&7).copied()
}

fn chained_iteration_fires(weights: &HashMap<u64, f64>) -> Vec<f64> {
    weights.values().copied().collect()
}

fn for_loop_fires(weights: HashMap<u64, f64>) {
    for (k, v) in &weights {
        let _ = (k, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_in_tests_is_exempt() {
        let weights: HashMap<u64, f64> = HashMap::new();
        let _: Vec<f64> = weights.values().copied().collect();
    }
}
