// virtual-path: crates/core/src/pragma_missing_reason.rs
// expect: D000 D002
//
// A pragma without a reason is rejected: the finding it meant to
// suppress survives (D002) and the malformed pragma is itself a
// finding (D000). Not compiled — scanned by the devlint corpus test
// under the virtual path above.

fn reasonless_pragma_rejected() -> u128 {
    let start = std::time::Instant::now(); // devlint::allow(D002)
    start.elapsed().as_nanos()
}
