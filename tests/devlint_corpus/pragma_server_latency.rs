// virtual-path: crates/server/src/request_timing.rs
// expect: D002
//
// The server's request path is inside D002 scope: wall-clock reads that
// feed latency observability must carry a reasoned pragma (the real
// crates/server/src/lib.rs does exactly this), while a bare read in the
// same file still fires. Not compiled — scanned by the devlint corpus
// test under the virtual path above.

fn timed_request_dispatch() -> f64 {
    // devlint::allow(D002): wall time feeds the latency histogram only, never the result
    let started = std::time::Instant::now();
    started.elapsed().as_secs_f64()
}

fn bare_clock_read_still_fires() -> bool {
    std::time::SystemTime::now().elapsed().is_ok()
}
