// virtual-path: crates/sparse/src/d004.rs
// expect: D001 D004 D004
//
// Two halves of D004: atomic-float emulation (RMW + bit casts on one
// line), and a float reduction chained onto hash-order iteration (the
// iteration itself also fires D001). A deterministic slice sum stays
// clean. Not compiled — scanned by the devlint corpus test under the
// virtual path above.
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

fn atomic_float_emulation_fires(acc: &AtomicU64, x: f64) {
    let _ = acc.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| Some(f64::to_bits(f64::from_bits(b) + x)));
}

fn hash_order_reduction_fires(weights: &HashMap<u64, f64>) -> f64 {
    weights.values().sum()
}

fn ordered_slice_sum_is_fine(row: &[f64]) -> f64 {
    row.iter().sum()
}
