// virtual-path: crates/core/src/d007.rs
// expect: D007
//
// An Event::Counter emission whose name is a string literal bypasses
// the COUNTER_NAMES registry and fires D007; emitting through the
// counters consts does not. Not compiled — scanned by the devlint
// corpus test (registry pass) under the virtual path above.

fn literal_name_fires() {
    mrmc_obs::record(|| mrmc_obs::Event::Counter {
        name: "ad_hoc_counter",
        value: 1,
    });
}

fn registry_const_is_fine() {
    mrmc_obs::record(|| mrmc_obs::Event::Counter {
        name: mrmc_obs::counters::SAT_CACHE_HITS,
        value: 1,
    });
}
