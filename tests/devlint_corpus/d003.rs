// virtual-path: crates/server/src/worker.rs
// expect: D003
//
// Unscoped `thread::spawn` fires D003 anywhere in the workspace;
// `thread::scope` parallelism does not. Not compiled — scanned by the
// devlint corpus test under the virtual path above.

fn detached_thread_fires() {
    std::thread::spawn(|| {
        let _ = 1 + 1;
    });
}

fn scoped_threads_are_fine(xs: &mut [u64]) {
    std::thread::scope(|scope| {
        for chunk in xs.chunks_mut(8) {
            scope.spawn(move || {
                for x in chunk {
                    *x += 1;
                }
            });
        }
    });
}
