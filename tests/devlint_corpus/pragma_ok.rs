// virtual-path: crates/core/src/pragma_ok.rs
// expect:
//
// A well-formed pragma with a reason suppresses its finding, both in
// trailing form and own-line form, and counts as used. Not compiled —
// scanned by the devlint corpus test under the virtual path above.

fn trailing_pragma() -> u128 {
    let start = std::time::Instant::now(); // devlint::allow(D002): fixture clock feeds nothing
    start.elapsed().as_nanos()
}

fn own_line_pragma() -> bool {
    // devlint::allow(D002): fixture clock feeds nothing
    std::time::SystemTime::now().elapsed().is_ok()
}
