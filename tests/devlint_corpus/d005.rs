// virtual-path: crates/server/src/lib.rs
// expect: D005 D005 D005
//
// The panic family in a server request-handling source fires D005 once
// per line; test modules are exempt. Not compiled — scanned by the
// devlint corpus test under the virtual path above.

fn unwrap_fires(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn expect_fires(x: Option<u32>) -> u32 {
    x.expect("present")
}

fn panic_fires(kind: u8) {
    if kind > 3 {
        panic!("unknown request kind");
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_exempt() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
