//! Every worked example of the thesis, checked end-to-end against the
//! public API.

use mrmc::{CheckOptions, ModelChecker};
use mrmc_ctmc::steady::SteadyStateAnalysis;
use mrmc_models::tmr::{tmr, TmrConfig};
use mrmc_models::{bscc_examples, dtmc_examples, phone, wavelan};
use mrmc_mrm::TimedPath;
use mrmc_numerics::discretization::{self, DiscretizationOptions};
use mrmc_numerics::uniformization::{self, UniformOptions};
use mrmc_sparse::solver::SolverOptions;

/// Examples 2.1–2.3: the Figure 2.1 DTMC's transient and steady-state
/// numbers.
#[test]
fn chapter_2_dtmc_examples() {
    let d = dtmc_examples::figure_2_1();
    let p3 = d.transient(&[1.0, 0.0, 0.0], 3);
    assert!((p3[0] - 0.325).abs() < 1e-12);
    assert!((p3[1] - 0.4125).abs() < 1e-12);
    assert!((p3[2] - 0.2625).abs() < 1e-12);

    let v = d
        .steady_state(&[1.0, 0.0, 0.0], SolverOptions::new())
        .unwrap();
    assert!((v[0] - 14.0 / 45.0).abs() < 1e-9);
    assert!((v[1] - 16.0 / 45.0).abs() < 1e-9);
    assert!((v[2] - 1.0 / 3.0).abs() < 1e-9);
}

/// Example 2.4: the WaveLAN exit rates.
#[test]
fn chapter_2_wavelan_exit_rates() {
    let m = wavelan();
    let e = m.ctmc().exit_rates();
    assert!((e[0] - 0.1).abs() < 1e-12);
    assert!((e[1] - 5.05).abs() < 1e-12);
    assert!((e[2] - 14.25).abs() < 1e-12);
    assert!((e[3] - 10.0).abs() < 1e-12);
    assert!((e[4] - 15.0).abs() < 1e-12);
}

/// Example 3.2: accumulated reward 11984.38715 mJ at t = 21.75 on the
/// example path.
#[test]
fn chapter_3_accumulated_reward() {
    let m = wavelan();
    let path = TimedPath::new(
        vec![0, 1, 2, 3, 2, 4, 2],
        vec![10.0, 4.0, 2.0, 3.75, 1.0, 2.5],
    )
    .unwrap();
    path.validate_in(&m).unwrap();
    assert_eq!(path.state_at(21.75), 4); // the thesis' state 5
    let y = path.accumulated_reward(&m, 21.75);
    assert!((y - 11984.38715).abs() < 1e-9, "y = {y}");
}

/// Example 3.4: the concrete path satisfies tt U^{[0,600]}_{[0,50]} busy;
/// the thesis reports y_σ(160) = 29.581 (in joules after unit scaling).
#[test]
fn chapter_3_path_satisfaction() {
    let m = wavelan();
    let path = TimedPath::new(
        vec![0, 1, 2, 3, 2, 4, 2],
        vec![100.0, 40.0, 20.0, 37.5, 10.0, 25.0],
    )
    .unwrap();
    // At the exact boundary Definition 3.3 assigns the *earlier* state
    // (the thesis example informally uses the later one); just past the
    // boundary the path is in the receive state and busy holds.
    assert_eq!(path.state_at(160.0), 2);
    assert_eq!(path.state_at(160.0 + 1e-9), 3);
    assert!(m.labeling().has(path.state_at(160.0 + 1e-9), "busy"));
    let y = path.accumulated_reward(&m, 160.0);
    // 29581.88715 mW·s ≈ 29.581 J as the thesis rounds it.
    assert!((y / 1000.0 - 29.581).abs() < 0.01, "y = {y} mJ");
}

/// Example 3.5: S(≥0.3)(b) on the Figure 3.2 chain — the probability is
/// 8/21 and the bound holds.
#[test]
fn chapter_3_steady_state_example() {
    let c = bscc_examples::figure_3_2();
    let analysis = SteadyStateAnalysis::new(&c, SolverOptions::new()).unwrap();
    let p = analysis.probability_from(0, &c.labeling().states_with("b"));
    assert!((p - 8.0 / 21.0).abs() < 1e-9);

    let checker = ModelChecker::new(bscc_examples::figure_3_2_mrm(), CheckOptions::new());
    let out = checker.check_str("S(>= 0.3) (b)").unwrap();
    assert!(out.holds_in(0));
    let probs = out.probabilities().unwrap();
    assert!((probs[0] - 8.0 / 21.0).abs() < 1e-9);
}

/// Example 3.6: P(3, idle U^{[0,2]}_{[0,2000]} busy) = 0.15789….
#[test]
fn chapter_3_until_closed_form() {
    let m = wavelan();
    let checker = ModelChecker::new(
        m,
        CheckOptions::new().with_engine(mrmc::UntilEngine::Uniformization(
            mrmc_numerics::uniformization::UniformOptions::new()
                .with_truncation(1e-10)
                .with_improved_pruning(),
        )),
    );
    let out = checker
        .check_str("P(> 0.1) [idle U[0,2][0,2000] busy]")
        .unwrap();
    let p = out.probabilities().unwrap();
    assert!((p[2] - 0.15789).abs() < 5e-4, "P = {}", p[2]);
    assert!(out.holds_in(2));
    assert!(!out.holds_in(0));
}

/// Example 4.1: making busy-states absorbing (Figure 4.1).
#[test]
fn chapter_4_make_absorbing() {
    let m = wavelan();
    let busy = m.labeling().states_with("busy");
    let a = mrmc_mrm::transform::make_absorbing(&m, &busy).unwrap();
    assert!(a.ctmc().is_absorbing(3));
    assert!(a.ctmc().is_absorbing(4));
    assert_eq!(a.state_reward(3), 0.0);
    assert_eq!(a.ctmc().rates().get(2, 3), 1.5);
}

/// Example 4.2: the uniformized WaveLAN chain (Figure 4.2).
#[test]
fn chapter_4_uniformization() {
    let m = wavelan();
    let (dtmc, lambda) = m.ctmc().uniformized(Some(15.0)).unwrap();
    assert_eq!(lambda, 15.0);
    let p = dtmc.probabilities();
    assert!((p.get(0, 0) - 149.0 / 150.0).abs() < 1e-12);
    assert!((p.get(2, 1) - 0.8).abs() < 1e-12);
    assert!((p.get(3, 3) - 1.0 / 3.0).abs() < 1e-12);
    assert!((p.get(4, 2) - 1.0).abs() < 1e-12);
}

/// Example 4.4: the Omega recursion on the worked numbers.
#[test]
fn chapter_4_omega_worked_example() {
    use mrmc_numerics::omega::OmegaEvaluator;
    // Rewards 5 > 3 > 1 > 0, impulses 2 > 1 > 0; n = 6, k = ⟨1,2,2,2⟩,
    // j = ⟨4,2,0⟩, t = 5, r = 15 → r' = 1, c = ⟨5,3,1,0⟩.
    let r_prime = 15.0 / 5.0 - 0.0 - (2.0 * 4.0 + 1.0 * 2.0 + 0.0) / 5.0;
    assert_eq!(r_prime, 1.0);
    let mut omega = OmegaEvaluator::new(vec![5.0, 3.0, 1.0, 0.0]).unwrap();
    let v = omega.evaluate(r_prime, &[1, 2, 2, 2]);
    assert!(v > 0.0 && v < 1.0);
    let mut fresh = OmegaEvaluator::new(vec![5.0, 3.0, 1.0, 0.0]).unwrap();
    assert_eq!(fresh.evaluate(r_prime, &[1, 2, 2, 2]), v);
}

// ---------------------------------------------------------------------------
// Golden accuracy tests: every evaluation-chapter probability is asserted
// within the engine's *own reported* error budget of the thesis' value
// (plus the thesis' own reported bound E, since both runs carry error).
// The TMR reward calibration matches the thesis to 14-15 digits
// (EXPERIMENTS.md, Table 5.8), so the paper numbers are directly
// comparable.
// ---------------------------------------------------------------------------

/// Thesis Table 5.3 rows (t, P, E) at constant `w = 1e-11`, `Λ = 0.0505`.
const TABLE_5_3: &[(f64, f64, f64)] = &[
    (50.0, 0.005087386, 2.44e-9),
    (100.0, 0.010200966, 1.25e-8),
    (200.0, 0.020357846, 9.59e-8),
    (300.0, 0.030410801, 3.72e-7),
];

/// Thesis Table 5.4 rows (t, w, P, E) — the per-`t` truncation schedule
/// that maintains E < 1e-4.
const TABLE_5_4: &[(f64, f64, f64, f64)] = &[
    (50.0, 1e-6, 0.005066347, 4.26e-5),
    (100.0, 1e-7, 0.010192188, 2.19e-5),
    (200.0, 1e-8, 0.020349518, 1.81e-5),
    (300.0, 1e-9, 0.030388713, 3.05e-5),
];

/// Thesis Table 5.8 rows (t, P) for discretization at `d = 0.25` (the
/// reproduction matches these to 14-15 significant digits).
const TABLE_5_8: &[(f64, f64)] = &[(50.0, 0.005061779415718182), (100.0, 0.010175568967901463)];

fn tmr_dependability_sets(m: &mrmc_mrm::Mrm) -> (Vec<bool>, Vec<bool>) {
    (
        m.labeling().states_with("Sup"),
        m.labeling().states_with("failed"),
    )
}

/// Table 5.3: uniformization at constant `w = 1e-11` reproduces the paper
/// probabilities within `budget.total() + E_thesis`.
#[test]
fn table_5_3_probabilities_within_reported_budget() {
    let config = TmrConfig::classic();
    let m = tmr(&config);
    let (phi, psi) = tmr_dependability_sets(&m);
    let start = config.state_with_working(3);
    for &(t, p_thesis, e_thesis) in TABLE_5_3 {
        let r = uniformization::until_probability(
            &m,
            &phi,
            &psi,
            t,
            3000.0,
            start,
            UniformOptions::new()
                .with_truncation(1e-11)
                .with_lambda(0.0505),
        )
        .unwrap();
        let slack = r.budget.total() + e_thesis;
        assert!(
            (r.probability - p_thesis).abs() <= slack,
            "t = {t}: |{} - {p_thesis}| > {slack}",
            r.probability
        );
        // Eq. 4.6 already charges the Poisson tail of each pruned prefix,
        // so the uniformization budget has no separate tail component and
        // its truncation component is exactly the engine-native bound.
        assert_eq!(r.budget.poisson_tail, 0.0, "t = {t}");
        assert_eq!(r.budget.path_truncation, r.error_bound, "t = {t}");
        assert!(r.budget.is_well_formed(), "t = {t}");
    }
}

/// Table 5.4: the thesis' truncation schedule keeps every reported budget
/// below 1e-4 and the paper values inside it.
#[test]
fn table_5_4_schedule_within_budget() {
    let config = TmrConfig::classic();
    let m = tmr(&config);
    let (phi, psi) = tmr_dependability_sets(&m);
    let start = config.state_with_working(3);
    for &(t, w, p_thesis, e_thesis) in TABLE_5_4 {
        let r = uniformization::until_probability(
            &m,
            &phi,
            &psi,
            t,
            3000.0,
            start,
            UniformOptions::new().with_truncation(w).with_lambda(0.0505),
        )
        .unwrap();
        assert!(
            r.budget.total() < 1e-4,
            "t = {t}: budget {} breaches the maintained bound",
            r.budget.total()
        );
        let slack = r.budget.total() + e_thesis;
        assert!(
            (r.probability - p_thesis).abs() <= slack,
            "t = {t}, w = {w}: |{} - {p_thesis}| > {slack}",
            r.probability
        );
    }
}

/// Table 5.8: discretization at `d = 0.25` hits the paper values within
/// its a-posteriori (Richardson) budget — which is far looser than the
/// actual 14-digit agreement, as an a-posteriori bound must be.
#[test]
fn table_5_8_discretization_within_budget() {
    let config = TmrConfig::classic();
    let m = tmr(&config);
    let (phi, psi) = tmr_dependability_sets(&m);
    let start = config.state_with_working(3);
    for &(t, p_thesis) in TABLE_5_8 {
        let r = discretization::until_probability(
            &m,
            &phi,
            &psi,
            t,
            3000.0,
            start,
            DiscretizationOptions::with_step(0.25),
        )
        .unwrap();
        assert!(
            (r.probability - p_thesis).abs() <= r.budget.total(),
            "t = {t}: |{} - {p_thesis}| > {}",
            r.probability,
            r.budget.total()
        );
        // The step-doubling estimate is the dominant component.
        assert!(r.budget.discretization > 0.0, "t = {t}");
        assert_eq!(r.budget.dominant().0, "discretization", "t = {t}");
    }
}

/// Table 5.1's golden contract. The thesis' reference value (0.49540399)
/// belongs to the original [Hav02] phone model, which is not recoverable
/// from the text; the in-tree substitute's contract is that discretization
/// converges on the *uniformization* reference within the sum of both
/// reported budgets (same shape checks as EXPERIMENTS.md).
#[test]
fn table_5_1_discretization_within_budget_of_reference() {
    let m = phone::phone();
    let phi: Vec<bool> = (0..m.num_states())
        .map(|s| m.labeling().has(s, "Call_Idle") || m.labeling().has(s, "Doze"))
        .collect();
    let psi = m.labeling().states_with("Call_Initiated");
    let (t, r) = (24.0, 600.0);

    let reference = uniformization::until_probability(
        &m,
        &phi,
        &psi,
        t,
        r,
        phone::DOZE,
        UniformOptions::new()
            .with_truncation(1e-10)
            .with_improved_pruning(),
    )
    .unwrap();

    for d in [1.0 / 16.0, 1.0 / 32.0] {
        let disc = discretization::until_probability(
            &m,
            &phi,
            &psi,
            t,
            r,
            phone::DOZE,
            DiscretizationOptions::with_step(d),
        )
        .unwrap();
        let slack = disc.budget.total() + reference.budget.total();
        assert!(
            (disc.probability - reference.probability).abs() <= slack,
            "d = {d}: |{} - {}| > {slack}",
            disc.probability,
            reference.probability
        );
    }
}

/// Example 3.3's formulas all parse and check on the WaveLAN model.
#[test]
fn chapter_3_example_formulas_check() {
    let checker = ModelChecker::new(wavelan(), CheckOptions::new());
    for f in [
        "P(> 0.5) [TT U[0,600][0,50] busy]",
        "P(> 0.8) [(busy || idle) U[0,10][0,50] sleep]",
        "P(> 0.8) [X (P(> 0.5) [X[0,10][0,50] sleep])]",
    ] {
        let out = checker.check_str(f).expect(f);
        assert_eq!(out.sat().len(), 5, "formula {f}");
    }
}
