//! Library-level tests of the static-analysis (lint) pipeline: the
//! repository's clean reference models must produce zero Error-grade
//! diagnostics, the pre-flight gate in [`mrmc::ModelChecker::check`] must
//! intercept broken formulas before any engine starts, and the analyzer
//! must be total (no panics) over randomly generated models.

use mrmc::{Analyzer, CheckError, CheckOptions, EngineHint, ModelChecker, Severity};
use mrmc_models::cluster::{cluster, ClusterConfig};
use mrmc_models::random::{random_mrm, RandomMrmConfig};
use mrmc_models::{tmr, wavelan, TmrConfig};

#[test]
fn clean_reference_models_have_no_error_diagnostics() {
    let analyzer = Analyzer::new();
    for (name, mrm) in [
        ("tmr", tmr(&TmrConfig::classic())),
        ("cluster", cluster(&ClusterConfig::new(4))),
        ("wavelan", wavelan()),
    ] {
        let report = analyzer.check_model(&mrm);
        assert!(
            !report.has_errors(),
            "{name}: model lint reported errors:\n{report}"
        );
    }
}

#[test]
fn well_formed_formulas_pass_the_formula_lints() {
    let analyzer = Analyzer::new();
    let mrm = tmr(&TmrConfig::classic());
    for text in [
        "S(> 0.9) (Sup)",
        "P(> 0.99) [TT U allUp]",
        "P(< 0.05) [Sup U[0,2][0,10] failed]",
        "P(> 0.1) [X[0,1][0,5] Sup]",
    ] {
        let f = mrmc_csrl::parse(text).unwrap();
        let report = analyzer.check_formula(&mrm, &f, EngineHint::default());
        assert!(
            !report.has_errors(),
            "`{text}` flagged with errors:\n{report}"
        );
    }
}

#[test]
fn preflight_gates_check_before_the_engines() {
    let checker = ModelChecker::new(tmr(&TmrConfig::classic()), CheckOptions::new());

    // Unknown proposition: F001 aborts the check.
    let e = checker.check_str("no_such_ap").unwrap_err();
    let CheckError::Preflight(report) = e else {
        panic!("expected a pre-flight abort, got {e}");
    };
    assert!(report.codes().contains(&"F001"), "{report}");

    // Unsupported bound combination: F002 aborts the check.
    let e = checker
        .check_str("P(>= 0.5) [Sup U[1,2][0,10] failed]")
        .unwrap_err();
    let CheckError::Preflight(report) = e else {
        panic!("expected a pre-flight abort, got {e}");
    };
    assert!(report.codes().contains(&"F002"), "{report}");

    // A checkable formula passes the gate and produces a verdict.
    assert!(checker.check_str("S(> 0.0) (Sup)").is_ok());
}

#[test]
fn preflight_report_is_available_without_checking() {
    let checker = ModelChecker::new(tmr(&TmrConfig::classic()), CheckOptions::new());
    let f = mrmc_csrl::parse("P(< 0.05) [Sup U[0,2][0,10] failed]").unwrap();
    let report = checker.preflight(&f);
    assert!(!report.has_errors(), "{report}");
    // The cost forecast (C103) rides along as a note.
    assert!(report.codes().contains(&"C103"), "{report}");
    assert_eq!(report.count(Severity::Error), 0);
}

#[test]
fn analyzer_is_total_over_random_models() {
    let analyzer = Analyzer::new();
    let config = RandomMrmConfig::default();
    for seed in 0..32 {
        let mrm = random_mrm(seed, &config);
        let report = analyzer.check_model(&mrm);
        // Random models are connected and positively labeled by
        // construction: warnings are possible, errors are not (the model
        // passes produce only Warning/Note grades).
        assert!(
            !report.has_errors(),
            "seed {seed}: unexpected errors:\n{report}"
        );
        for text in ["P(> 0.1) [TT U[0,1][0,2] goal]", "S(> 0.1) (goal)"] {
            let f = mrmc_csrl::parse(text).unwrap();
            let fr = analyzer.check_formula(&mrm, &f, EngineHint::default());
            assert!(!fr.has_errors(), "seed {seed} `{text}`:\n{fr}");
        }
    }
}
