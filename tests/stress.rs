//! Larger-state-space sanity: the analyses stay correct and tractable on
//! models well beyond the paper's 5–13-state examples.

use mrmc::{CheckOptions, ModelChecker};
use mrmc_ctmc::bscc::SccDecomposition;
use mrmc_ctmc::steady::SteadyStateAnalysis;
use mrmc_models::cluster::{cluster, ClusterConfig};
use mrmc_models::random::{random_mrm, RandomMrmConfig};
use mrmc_numerics::baseline;
use mrmc_sparse::solver::SolverOptions;

#[test]
fn cluster_200_states_full_checker_pass() {
    // N = 4 → 200 states.
    let config = ClusterConfig::new(4);
    let m = cluster(&config);
    assert_eq!(m.num_states(), 200);
    let start = config.all_up();

    let checker = ModelChecker::new(m, CheckOptions::new());

    // Steady state: premium service is the common case.
    let out = checker.check_str("S(> 0.9) (premium)").unwrap();
    assert!(out.holds_in(start));
    let p = out.probabilities().unwrap();
    assert!(p[start] > 0.9 && p[start] <= 1.0);

    // Time-bounded until: losing minimum QoS within a week is rare.
    let out = checker
        .check_str("P(< 0.05) [minimum U[0,168] down]")
        .unwrap();
    assert!(out.holds_in(start));

    // Interval-time until through the two-phase method.
    let out = checker.check_str("P(< 0.5) [TT U[24,168] down]").unwrap();
    let p = out.probabilities().unwrap();
    assert!((0.0..=1.0).contains(&p[start]));
}

#[test]
fn cluster_unbounded_reachability_is_certain() {
    // The repair unit keeps the chain irreducible: `down` is eventually
    // reached from everywhere, and so is `premium`. The chain is stiff
    // (failures are ~200× slower than repairs), so Gauss–Seidel needs a
    // bigger iteration budget than the defaults.
    let config = ClusterConfig::new(3);
    let m = cluster(&config);
    let phi = vec![true; m.num_states()];
    let solver = SolverOptions::new()
        .with_max_iterations(3_000_000)
        .with_tolerance(1e-10);
    for target in ["down", "premium"] {
        let psi = m.labeling().states_with(target);
        let embedded = m.ctmc().embedded_dtmc();
        let r = mrmc_ctmc::reach::until_unbounded(embedded.probabilities(), &phi, &psi, solver)
            .unwrap();
        for (s, &p) in r.iter().enumerate() {
            assert!(p > 1.0 - 1e-4, "{target} from state {s}: {p}");
        }
    }
}

#[test]
fn random_500_state_model_analyses() {
    let cfg = RandomMrmConfig {
        states: 500,
        extra_transitions_per_state: 3.0,
        max_rate: 4.0,
        reward_levels: vec![0.0, 1.0, 2.0],
        impulse_levels: vec![0.0, 1.0],
        goal_fraction: 0.1,
    };
    let m = random_mrm(2024, &cfg);

    // BSCC decomposition partitions the state space.
    let scc = SccDecomposition::new(m.ctmc().rates());
    let mut seen = vec![false; 500];
    for c in 0..scc.num_components() {
        for &s in scc.component(c) {
            assert!(!seen[s], "state {s} in two components");
            seen[s] = true;
        }
    }
    assert!(seen.iter().all(|&b| b));

    // Steady-state distribution from state 0 sums to one.
    let analysis = SteadyStateAnalysis::new(m.ctmc(), SolverOptions::new()).unwrap();
    let d = analysis.distribution_from(0);
    let total: f64 = d.iter().sum();
    assert!((total - 1.0).abs() < 1e-6, "total {total}");

    // Time-bounded until over all 500 states at once.
    let phi = vec![true; 500];
    let psi = m.labeling().states_with("goal");
    let probs = baseline::until_time_bounded(&m, &phi, &psi, 1.0, 1e-9).unwrap();
    for &p in &probs {
        assert!((0.0..=1.0).contains(&p));
    }
    // The spanning chain guarantees goal states are reachable from 0.
    assert!(probs[0] > 0.0);
}

#[test]
fn cluster_steady_state_matches_across_solvers() {
    // Gauss–Seidel-based chain analysis vs power iteration on the
    // uniformized chain, on a 128-state cluster.
    let config = ClusterConfig::new(3);
    let m = cluster(&config);
    let pi_gs =
        mrmc_ctmc::steady::steady_state_strongly_connected(m.ctmc(), SolverOptions::new()).unwrap();
    let (uni, _) = m.ctmc().uniformized(None).unwrap();
    let start = vec![1.0 / m.num_states() as f64; m.num_states()];
    let pi_pw =
        mrmc_sparse::solver::power_iteration(uni.probabilities(), &start, SolverOptions::new())
            .unwrap();
    for (s, (a, b)) in pi_gs.iter().zip(&pi_pw).enumerate() {
        assert!((a - b).abs() < 1e-7, "state {s}: {a} vs {b}");
    }
}
