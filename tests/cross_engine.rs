//! Cross-engine equivalence: the thesis' own correctness argument
//! (Section 5.3.3) — uniformization and discretization must converge to the
//! same values, and both must degenerate to the state-reward-free baseline
//! when the reward bound is loose.

use mrmc_models::cluster::{cluster, ClusterConfig};
use mrmc_models::tmr::{tmr, TmrConfig};
use mrmc_models::{phone, random, wavelan};
use mrmc_numerics::baseline;
use mrmc_numerics::discretization::{self, DiscretizationOptions};
use mrmc_numerics::uniformization::{self, UniformOptions};

#[test]
fn tmr_engines_agree_at_several_horizons() {
    let config = TmrConfig::classic();
    let m = tmr(&config);
    let phi = m.labeling().states_with("Sup");
    let psi = m.labeling().states_with("failed");
    let start = config.state_with_working(3);

    for &t in &[50.0, 100.0, 200.0] {
        let uni = uniformization::until_probability(
            &m,
            &phi,
            &psi,
            t,
            3000.0,
            start,
            UniformOptions::new()
                .with_truncation(1e-11)
                .with_lambda(0.0505),
        )
        .unwrap();
        let disc = discretization::until_probability(
            &m,
            &phi,
            &psi,
            t,
            3000.0,
            start,
            DiscretizationOptions::with_step(0.25),
        )
        .unwrap();
        assert!(
            (uni.probability - disc.probability).abs() < 5e-4 + uni.error_bound,
            "t = {t}: uniformization {} vs discretization {}",
            uni.probability,
            disc.probability
        );
    }
}

#[test]
fn tmr_parallel_uniformization_is_bitwise_serial_and_agrees_with_discretization() {
    // The parallel engine promises *bit-for-bit* equality with the serial
    // engine at any thread count, and both must stay within the Eq. 4.6
    // truncation error bound of the independent discretization engine.
    let config = TmrConfig::classic();
    let m = tmr(&config);
    let phi = m.labeling().states_with("Sup");
    let psi = m.labeling().states_with("failed");
    let start = config.state_with_working(3);
    let (t, r) = (100.0, 3000.0);
    let base = UniformOptions::new()
        .with_truncation(1e-11)
        .with_lambda(0.0505);

    let serial = uniformization::until_probability(&m, &phi, &psi, t, r, start, base).unwrap();
    for threads in [2, 4, 8] {
        let parallel = uniformization::until_probability(
            &m,
            &phi,
            &psi,
            t,
            r,
            start,
            base.with_threads(threads),
        )
        .unwrap();
        assert_eq!(
            serial.probability.to_bits(),
            parallel.probability.to_bits(),
            "threads = {threads}: {} vs {}",
            serial.probability,
            parallel.probability
        );
        assert_eq!(serial.error_bound.to_bits(), parallel.error_bound.to_bits());
        assert_eq!(serial.num_classes, parallel.num_classes);
        assert_eq!(serial.explored_nodes, parallel.explored_nodes);
    }

    let disc = discretization::until_probability(
        &m,
        &phi,
        &psi,
        t,
        r,
        start,
        DiscretizationOptions::with_step(0.25),
    )
    .unwrap();
    assert!(
        (serial.probability - disc.probability).abs() < 5e-4 + serial.error_bound,
        "uniformization {} (±{}) vs discretization {}",
        serial.probability,
        serial.error_bound,
        disc.probability
    );
}

#[test]
fn cluster_parallel_uniformization_is_bitwise_serial_and_agrees_with_discretization() {
    // Same contract on a structurally different model: the workstation
    // cluster with repair impulses (larger state space, denser branching).
    let config = ClusterConfig::new(2);
    let m = cluster(&config);
    let phi = vec![true; m.num_states()];
    let premium = m.labeling().states_with("premium");
    let psi: Vec<bool> = premium.iter().map(|&p| !p).collect();
    let start = config.all_up();
    let (t, r) = (10.0, 25.0);
    let base = UniformOptions::new()
        .with_truncation(1e-9)
        .with_improved_pruning();

    let serial = uniformization::until_probability(&m, &phi, &psi, t, r, start, base).unwrap();
    assert!(serial.probability > 0.0, "degradation must be reachable");
    for threads in [2, 4, 8] {
        let parallel = uniformization::until_probability(
            &m,
            &phi,
            &psi,
            t,
            r,
            start,
            base.with_threads(threads),
        )
        .unwrap();
        assert_eq!(
            serial.probability.to_bits(),
            parallel.probability.to_bits(),
            "threads = {threads}: {} vs {}",
            serial.probability,
            parallel.probability
        );
        assert_eq!(serial.error_bound.to_bits(), parallel.error_bound.to_bits());
        assert_eq!(serial.stored_paths, parallel.stored_paths);
        assert_eq!(serial.truncated_paths, parallel.truncated_paths);
    }

    let disc = discretization::until_probability(
        &m,
        &phi,
        &psi,
        t,
        r,
        start,
        DiscretizationOptions::with_step(1.0 / 16.0),
    )
    .unwrap();
    assert!(
        (serial.probability - disc.probability).abs() < 5e-3 + serial.error_bound,
        "uniformization {} (±{}) vs discretization {}",
        serial.probability,
        serial.error_bound,
        disc.probability
    );
}

#[test]
fn phone_engines_agree() {
    let m = phone::phone();
    let phi: Vec<bool> = (0..m.num_states())
        .map(|s| m.labeling().has(s, "Call_Idle") || m.labeling().has(s, "Doze"))
        .collect();
    let psi = m.labeling().states_with("Call_Initiated");

    let uni = uniformization::until_probability(
        &m,
        &phi,
        &psi,
        24.0,
        600.0,
        phone::DOZE,
        UniformOptions::new()
            .with_truncation(1e-10)
            .with_improved_pruning(),
    )
    .unwrap();
    let disc = discretization::until_probability(
        &m,
        &phi,
        &psi,
        24.0,
        600.0,
        phone::DOZE,
        DiscretizationOptions::with_step(1.0 / 64.0),
    )
    .unwrap();
    assert!(
        (uni.probability - disc.probability).abs() < 5e-3,
        "uniformization {} vs discretization {}",
        uni.probability,
        disc.probability
    );
}

#[test]
fn loose_reward_bound_matches_the_baseline() {
    // With a reward bound far above anything reachable, both reward-aware
    // engines must agree with plain time-bounded until.
    let m = wavelan();
    let phi = m.labeling().states_with("idle");
    let psi = m.labeling().states_with("busy");
    let t = 0.4;

    let reference = baseline::until_time_bounded(&m, &phi, &psi, t, 1e-12).unwrap()[2];
    let uni = uniformization::until_probability(
        &m,
        &phi,
        &psi,
        t,
        1e9,
        2,
        UniformOptions::new().with_truncation(1e-11),
    )
    .unwrap();
    assert!(
        (uni.probability - reference).abs() < 1e-6 + uni.error_bound,
        "uniformization {} vs baseline {reference}",
        uni.probability
    );

    let disc = discretization::until_probability(
        &m,
        &phi,
        &psi,
        t,
        1000.0, // comfortably above 1319·0.4 + impulses ≈ 528
        2,
        DiscretizationOptions::with_step(1.0 / 256.0),
    )
    .unwrap();
    assert!(
        (disc.probability - reference).abs() < 5e-3,
        "discretization {} vs baseline {reference}",
        disc.probability
    );
}

#[test]
fn zero_impulse_models_agree_with_impulse_api() {
    // The generic engines run the impulse-reward code path even when every
    // impulse is zero; the result must match a hand-stripped model.
    let with = phone::phone_with_impulses();
    let without = phone::phone();
    let phi: Vec<bool> = (0..5)
        .map(|s| with.labeling().has(s, "Call_Idle") || with.labeling().has(s, "Doze"))
        .collect();
    let psi = with.labeling().states_with("Call_Initiated");
    let opts = UniformOptions::new()
        .with_truncation(1e-9)
        .with_improved_pruning();

    // With a huge reward bound the impulses cannot matter.
    let a = uniformization::until_probability(&with, &phi, &psi, 12.0, 1e9, 0, opts).unwrap();
    let b = uniformization::until_probability(&without, &phi, &psi, 12.0, 1e9, 0, opts).unwrap();
    assert!(
        (a.probability - b.probability).abs() < 1e-9 + a.error_bound + b.error_bound,
        "{} vs {}",
        a.probability,
        b.probability
    );
}

#[test]
fn random_models_cross_engine() {
    // Seeded random MRMs with integer rewards: both engines within a few
    // times the discretization step of each other.
    let cfg = random::RandomMrmConfig {
        states: 5,
        extra_transitions_per_state: 1.0,
        max_rate: 2.0,
        reward_levels: vec![0.0, 1.0, 3.0],
        impulse_levels: vec![0.0, 1.0],
        goal_fraction: 0.3,
    };
    for seed in [1u64, 7, 23] {
        let m = random::random_mrm(seed, &cfg);
        let phi = vec![true; m.num_states()];
        let psi = m.labeling().states_with("goal");
        let (t, r) = (1.0, 4.0);

        let uni = uniformization::until_probability(
            &m,
            &phi,
            &psi,
            t,
            r,
            0,
            UniformOptions::new().with_truncation(1e-9),
        )
        .unwrap();
        let disc = discretization::until_probability(
            &m,
            &phi,
            &psi,
            t,
            r,
            0,
            DiscretizationOptions::with_step(1.0 / 512.0),
        )
        .unwrap();
        assert!(
            (uni.probability - disc.probability).abs() < 0.02 + uni.error_bound,
            "seed {seed}: uniformization {} (±{}) vs discretization {}",
            uni.probability,
            uni.error_bound,
            disc.probability
        );
    }
}
