//! Cross-engine equivalence: the thesis' own correctness argument
//! (Section 5.3.3) — uniformization and discretization must converge to the
//! same values, and both must degenerate to the state-reward-free baseline
//! when the reward bound is loose.

use mrmc::{CheckOptions, CheckOutcome, ModelChecker};
use mrmc_models::cluster::{cluster, ClusterConfig};
use mrmc_models::tmr::{tmr, TmrConfig};
use mrmc_models::{phone, random, wavelan};
use mrmc_mrm::Mrm;
use mrmc_numerics::baseline;
use mrmc_numerics::discretization::{self, DiscretizationOptions};
use mrmc_numerics::uniformization::{self, UniformOptions};
use mrmc_sparse::solver::SolverMethod;

#[test]
fn tmr_engines_agree_at_several_horizons() {
    let config = TmrConfig::classic();
    let m = tmr(&config);
    let phi = m.labeling().states_with("Sup");
    let psi = m.labeling().states_with("failed");
    let start = config.state_with_working(3);

    for &t in &[50.0, 100.0, 200.0] {
        let uni = uniformization::until_probability(
            &m,
            &phi,
            &psi,
            t,
            3000.0,
            start,
            UniformOptions::new()
                .with_truncation(1e-11)
                .with_lambda(0.0505),
        )
        .unwrap();
        let disc = discretization::until_probability(
            &m,
            &phi,
            &psi,
            t,
            3000.0,
            start,
            DiscretizationOptions::with_step(0.25),
        )
        .unwrap();
        assert!(
            (uni.probability - disc.probability).abs() < 5e-4 + uni.error_bound,
            "t = {t}: uniformization {} vs discretization {}",
            uni.probability,
            disc.probability
        );
    }
}

#[test]
fn tmr_parallel_uniformization_is_bitwise_serial_and_agrees_with_discretization() {
    // The parallel engine promises *bit-for-bit* equality with the serial
    // engine at any thread count, and both must stay within the Eq. 4.6
    // truncation error bound of the independent discretization engine.
    let config = TmrConfig::classic();
    let m = tmr(&config);
    let phi = m.labeling().states_with("Sup");
    let psi = m.labeling().states_with("failed");
    let start = config.state_with_working(3);
    let (t, r) = (100.0, 3000.0);
    let base = UniformOptions::new()
        .with_truncation(1e-11)
        .with_lambda(0.0505);

    let serial = uniformization::until_probability(&m, &phi, &psi, t, r, start, base).unwrap();
    for threads in [2, 4, 8] {
        let parallel = uniformization::until_probability(
            &m,
            &phi,
            &psi,
            t,
            r,
            start,
            base.with_threads(threads),
        )
        .unwrap();
        assert_eq!(
            serial.probability.to_bits(),
            parallel.probability.to_bits(),
            "threads = {threads}: {} vs {}",
            serial.probability,
            parallel.probability
        );
        assert_eq!(serial.error_bound.to_bits(), parallel.error_bound.to_bits());
        assert_eq!(serial.num_classes, parallel.num_classes);
        assert_eq!(serial.explored_nodes, parallel.explored_nodes);
    }

    let disc = discretization::until_probability(
        &m,
        &phi,
        &psi,
        t,
        r,
        start,
        DiscretizationOptions::with_step(0.25),
    )
    .unwrap();
    assert!(
        (serial.probability - disc.probability).abs() < 5e-4 + serial.error_bound,
        "uniformization {} (±{}) vs discretization {}",
        serial.probability,
        serial.error_bound,
        disc.probability
    );
}

#[test]
fn cluster_parallel_uniformization_is_bitwise_serial_and_agrees_with_discretization() {
    // Same contract on a structurally different model: the workstation
    // cluster with repair impulses (larger state space, denser branching).
    let config = ClusterConfig::new(2);
    let m = cluster(&config);
    let phi = vec![true; m.num_states()];
    let premium = m.labeling().states_with("premium");
    let psi: Vec<bool> = premium.iter().map(|&p| !p).collect();
    let start = config.all_up();
    let (t, r) = (10.0, 25.0);
    let base = UniformOptions::new()
        .with_truncation(1e-9)
        .with_improved_pruning();

    let serial = uniformization::until_probability(&m, &phi, &psi, t, r, start, base).unwrap();
    assert!(serial.probability > 0.0, "degradation must be reachable");
    for threads in [2, 4, 8] {
        let parallel = uniformization::until_probability(
            &m,
            &phi,
            &psi,
            t,
            r,
            start,
            base.with_threads(threads),
        )
        .unwrap();
        assert_eq!(
            serial.probability.to_bits(),
            parallel.probability.to_bits(),
            "threads = {threads}: {} vs {}",
            serial.probability,
            parallel.probability
        );
        assert_eq!(serial.error_bound.to_bits(), parallel.error_bound.to_bits());
        assert_eq!(serial.stored_paths, parallel.stored_paths);
        assert_eq!(serial.truncated_paths, parallel.truncated_paths);
    }

    let disc = discretization::until_probability(
        &m,
        &phi,
        &psi,
        t,
        r,
        start,
        DiscretizationOptions::with_step(1.0 / 16.0),
    )
    .unwrap();
    assert!(
        (serial.probability - disc.probability).abs() < 5e-3 + serial.error_bound,
        "uniformization {} (±{}) vs discretization {}",
        serial.probability,
        serial.error_bound,
        disc.probability
    );
}

#[test]
fn phone_engines_agree() {
    let m = phone::phone();
    let phi: Vec<bool> = (0..m.num_states())
        .map(|s| m.labeling().has(s, "Call_Idle") || m.labeling().has(s, "Doze"))
        .collect();
    let psi = m.labeling().states_with("Call_Initiated");

    let uni = uniformization::until_probability(
        &m,
        &phi,
        &psi,
        24.0,
        600.0,
        phone::DOZE,
        UniformOptions::new()
            .with_truncation(1e-10)
            .with_improved_pruning(),
    )
    .unwrap();
    let disc = discretization::until_probability(
        &m,
        &phi,
        &psi,
        24.0,
        600.0,
        phone::DOZE,
        DiscretizationOptions::with_step(1.0 / 64.0),
    )
    .unwrap();
    assert!(
        (uni.probability - disc.probability).abs() < 5e-3,
        "uniformization {} vs discretization {}",
        uni.probability,
        disc.probability
    );
}

#[test]
fn loose_reward_bound_matches_the_baseline() {
    // With a reward bound far above anything reachable, both reward-aware
    // engines must agree with plain time-bounded until.
    let m = wavelan();
    let phi = m.labeling().states_with("idle");
    let psi = m.labeling().states_with("busy");
    let t = 0.4;

    let reference = baseline::until_time_bounded(&m, &phi, &psi, t, 1e-12).unwrap()[2];
    let uni = uniformization::until_probability(
        &m,
        &phi,
        &psi,
        t,
        1e9,
        2,
        UniformOptions::new().with_truncation(1e-11),
    )
    .unwrap();
    assert!(
        (uni.probability - reference).abs() < 1e-6 + uni.error_bound,
        "uniformization {} vs baseline {reference}",
        uni.probability
    );

    let disc = discretization::until_probability(
        &m,
        &phi,
        &psi,
        t,
        1000.0, // comfortably above 1319·0.4 + impulses ≈ 528
        2,
        DiscretizationOptions::with_step(1.0 / 256.0),
    )
    .unwrap();
    assert!(
        (disc.probability - reference).abs() < 5e-3,
        "discretization {} vs baseline {reference}",
        disc.probability
    );
}

#[test]
fn zero_impulse_models_agree_with_impulse_api() {
    // The generic engines run the impulse-reward code path even when every
    // impulse is zero; the result must match a hand-stripped model.
    let with = phone::phone_with_impulses();
    let without = phone::phone();
    let phi: Vec<bool> = (0..5)
        .map(|s| with.labeling().has(s, "Call_Idle") || with.labeling().has(s, "Doze"))
        .collect();
    let psi = with.labeling().states_with("Call_Initiated");
    let opts = UniformOptions::new()
        .with_truncation(1e-9)
        .with_improved_pruning();

    // With a huge reward bound the impulses cannot matter.
    let a = uniformization::until_probability(&with, &phi, &psi, 12.0, 1e9, 0, opts).unwrap();
    let b = uniformization::until_probability(&without, &phi, &psi, 12.0, 1e9, 0, opts).unwrap();
    assert!(
        (a.probability - b.probability).abs() < 1e-9 + a.error_bound + b.error_bound,
        "{} vs {}",
        a.probability,
        b.probability
    );
}

/// Check `formula` with the colored Gauss–Seidel solver at every thread
/// count and assert the outcomes are *identical* (`CheckOutcome` derives
/// `PartialEq`, so this compares satisfying sets, unknown sets, and every
/// probability bit for bit). Also sanity-check the colored solution
/// against the plain serial solver — same verdicts, probabilities within
/// solver tolerance (the two iteration orders legitimately differ in the
/// last few ulps, so this comparison is approximate by design).
fn assert_colored_solver_is_deterministic(name: &str, mrm: &Mrm, formula: &str) {
    let solve = |method: SolverMethod, threads: usize| -> CheckOutcome {
        let options = CheckOptions::new()
            .with_solver_method(method)
            .with_threads(threads);
        ModelChecker::new(mrm.clone(), options)
            .check_str(formula)
            .unwrap_or_else(|e| panic!("model {name}, `{formula}`: {e}"))
    };

    let reference = solve(SolverMethod::ColoredGaussSeidel, 1);
    for threads in [2, 4, 8] {
        let outcome = solve(SolverMethod::ColoredGaussSeidel, threads);
        assert_eq!(
            reference, outcome,
            "colored solver diverged at {threads} threads: model {name}, `{formula}`"
        );
    }

    let plain = solve(SolverMethod::GaussSeidel, 1);
    assert_eq!(
        plain.sat(),
        reference.sat(),
        "solver methods disagree on the satisfying set: model {name}, `{formula}`"
    );
    if let (Some(p), Some(c)) = (plain.probabilities(), reference.probabilities()) {
        for (s, (a, b)) in p.iter().zip(c).enumerate() {
            assert!(
                (a - b).abs() < 1e-6,
                "model {name}, `{formula}`, state {s}: plain {a} vs colored {b}"
            );
        }
    }
}

#[test]
fn colored_solver_is_deterministic_on_the_paper_models() {
    // Steady-state and unbounded-until formulas route through the linear
    // solver (`steady` and `reachability` engines); these are the paths the
    // multicolor Gauss–Seidel schedule must keep bit-stable under
    // parallelism.
    let tmr_model = tmr(&TmrConfig::classic());
    assert_colored_solver_is_deterministic("tmr", &tmr_model, "S(> 0.5) (allUp)");
    assert_colored_solver_is_deterministic("tmr", &tmr_model, "P(> 0.1) [TT U failed]");

    let cluster_model = cluster(&ClusterConfig::new(2));
    assert_colored_solver_is_deterministic("cluster", &cluster_model, "S(> 0.0) (premium)");
    assert_colored_solver_is_deterministic("cluster", &cluster_model, "P(>= 0.0) [premium U down]");

    let wavelan_model = wavelan();
    assert_colored_solver_is_deterministic("wavelan", &wavelan_model, "S(> 0.1) (idle)");
    assert_colored_solver_is_deterministic("wavelan", &wavelan_model, "P(> 0.01) [TT U busy]");
}

#[test]
fn colored_solver_is_deterministic_on_random_models() {
    // 32 seeded random MRMs: irregular sparsity patterns give the greedy
    // coloring more classes to schedule than the structured paper models.
    let cfg = random::RandomMrmConfig {
        states: 6,
        extra_transitions_per_state: 1.0,
        max_rate: 2.0,
        reward_levels: vec![0.0, 1.0, 3.0],
        impulse_levels: vec![0.0, 0.5],
        goal_fraction: 0.3,
    };
    for seed in 0u64..32 {
        let m = random::random_mrm(seed, &cfg);
        let name = format!("random{seed}");
        assert_colored_solver_is_deterministic(&name, &m, "P(>= 0.0) [TT U goal]");
        assert_colored_solver_is_deterministic(&name, &m, "S(>= 0.0) (goal)");
    }
}

#[test]
fn random_models_cross_engine() {
    // Seeded random MRMs with integer rewards: both engines within a few
    // times the discretization step of each other.
    let cfg = random::RandomMrmConfig {
        states: 5,
        extra_transitions_per_state: 1.0,
        max_rate: 2.0,
        reward_levels: vec![0.0, 1.0, 3.0],
        impulse_levels: vec![0.0, 1.0],
        goal_fraction: 0.3,
    };
    for seed in [1u64, 7, 23] {
        let m = random::random_mrm(seed, &cfg);
        let phi = vec![true; m.num_states()];
        let psi = m.labeling().states_with("goal");
        let (t, r) = (1.0, 4.0);

        let uni = uniformization::until_probability(
            &m,
            &phi,
            &psi,
            t,
            r,
            0,
            UniformOptions::new().with_truncation(1e-9),
        )
        .unwrap();
        let disc = discretization::until_probability(
            &m,
            &phi,
            &psi,
            t,
            r,
            0,
            DiscretizationOptions::with_step(1.0 / 512.0),
        )
        .unwrap();
        assert!(
            (uni.probability - disc.probability).abs() < 0.02 + uni.error_bound,
            "seed {seed}: uniformization {} (±{}) vs discretization {}",
            uni.probability,
            uni.error_bound,
            disc.probability
        );
    }
}
