//! The session/server conformance contract: checking through a
//! [`CheckSession`] — cold caches, hot caches, shared across thread
//! counts, or over the JSONL wire — is bit-for-bit identical to a fresh
//! one-shot [`ModelChecker`] run.
//!
//! This is the load-bearing guarantee behind `mrmc serve`: every cache in
//! the session (memoized `Sat` sub-results, verified lumping
//! certificates, Omega-term tables) serves values that a fresh run would
//! recompute identically, so promoting the checker to a long-lived
//! service changes *when* work happens but never *what* comes out.
//! `CheckOutcome` derives `PartialEq` over satisfying sets, unknown sets,
//! probabilities, error bounds, and full error budgets, so the
//! comparisons below are exact.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use mrmc::report::json_outcome;
use mrmc::{CheckOptions, CheckOutcome, CheckSession, ModelChecker};
use mrmc_mrm::Mrm;
use mrmc_server::{json, Server, ServerConfig};

use mrmc_models::cluster::{cluster, ClusterConfig};
use mrmc_models::random::{random_mrm, RandomMrmConfig};
use mrmc_models::tmr::{tmr, TmrConfig};
use mrmc_models::wavelan::wavelan;

fn random_cfg() -> RandomMrmConfig {
    RandomMrmConfig {
        states: 6,
        extra_transitions_per_state: 1.0,
        max_rate: 2.0,
        reward_levels: vec![0.0, 1.0, 3.0],
        impulse_levels: vec![0.0, 0.5],
        goal_fraction: 0.3,
    }
}

fn paper_models() -> Vec<(&'static str, Mrm, Vec<&'static str>)> {
    vec![
        (
            "tmr",
            tmr(&TmrConfig::classic()),
            vec![
                "P(> 0.1) [TT U[0,1][0,10] failed]",
                "P(> 0.01) [allUp U[0,2] failed]",
                "S(> 0.5) (allUp)",
            ],
        ),
        (
            "cluster",
            cluster(&ClusterConfig::new(2)),
            vec![
                "P(>= 0.1) [TT U[0,1] down]",
                "P(>= 0.0) [backbone_up U[0,1][0,5] down]",
            ],
        ),
        (
            "wavelan",
            wavelan(),
            vec!["P(> 0.01) [TT U[0,0.5][0,2] busy]", "S(> 0.1) (idle)"],
        ),
    ]
}

fn one_shot(mrm: &Mrm, options: CheckOptions, formula: &str) -> CheckOutcome {
    ModelChecker::new(mrm.clone(), options)
        .check_str(formula)
        .unwrap_or_else(|e| panic!("one-shot `{formula}` failed: {e}"))
}

/// Check every formula twice through one session per thread count —
/// caches cold, then hot — asserting each result bitwise-equal to a fresh
/// one-shot run, and that the hot pass was actually served from the
/// cache.
fn assert_session_conforms(name: &str, mrm: &Mrm, formulas: &[&str]) {
    for threads in [1usize, 4] {
        let options = CheckOptions::new().with_threads(threads);
        let session = CheckSession::new();
        let handle = session.insert(mrm.clone());
        for pass in ["cold", "hot"] {
            let before = session.stats();
            for formula in formulas {
                let ctx = format!("model {name}, threads {threads}, {pass}, `{formula}`");
                let expected = one_shot(mrm, options, formula);
                let got = session
                    .check_str(&handle, formula, &options)
                    .unwrap_or_else(|e| panic!("session check failed: {ctx}: {e}"));
                assert_eq!(expected, got, "session result differs: {ctx}");
            }
            let after = session.stats();
            if pass == "cold" {
                assert!(
                    after.sat_cache_misses > before.sat_cache_misses,
                    "cold pass must populate the cache: {name} at {threads} threads"
                );
            } else {
                assert!(
                    after.sat_cache_hits > before.sat_cache_hits,
                    "hot pass must hit the cache: {name} at {threads} threads"
                );
                assert_eq!(
                    after.sat_cache_misses, before.sat_cache_misses,
                    "hot pass must not recompute: {name} at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn session_conforms_on_the_paper_models() {
    for (name, mrm, formulas) in paper_models() {
        assert_session_conforms(name, &mrm, &formulas);
    }
}

#[test]
fn session_conforms_on_32_random_models() {
    for seed in 0u64..32 {
        let m = random_mrm(seed, &random_cfg());
        assert_session_conforms(
            &format!("random{seed}"),
            &m,
            &["P(< 0.5) [TT U[0,1][0,4] goal]", "goal"],
        );
    }
}

/// The cache key deliberately excludes thread counts (the parallel
/// engines are bit-identical at every count), so one session serves both:
/// a result computed at 1 thread is returned, bitwise-correct, to a
/// 4-thread request.
#[test]
fn one_session_is_exact_across_thread_counts() {
    let m = tmr(&TmrConfig::classic());
    let formula = "P(> 0.1) [TT U[0,1][0,10] failed]";
    let session = CheckSession::new();
    let handle = session.insert(m.clone());

    let serial = CheckOptions::new().with_threads(1);
    let parallel = CheckOptions::new().with_threads(4);
    let primed = session.check_str(&handle, formula, &serial).unwrap();
    let hits_before = session.stats().sat_cache_hits;
    let served = session.check_str(&handle, formula, &parallel).unwrap();
    assert!(
        session.stats().sat_cache_hits > hits_before,
        "the 4-thread request must be served from the 1-thread entry"
    );
    assert_eq!(primed, served);
    assert_eq!(served, one_shot(&m, parallel, formula));
}

fn write_model(dir: &std::path::Path, mrm: &Mrm) -> [std::path::PathBuf; 4] {
    use mrmc_mrm::io::{write_lab, write_rewi, write_rewr, write_tra};
    let paths = [
        dir.join("m.tra"),
        dir.join("m.lab"),
        dir.join("m.rewr"),
        dir.join("m.rewi"),
    ];
    std::fs::write(&paths[0], write_tra(mrm)).unwrap();
    std::fs::write(&paths[1], write_lab(mrm)).unwrap();
    std::fs::write(&paths[2], write_rewr(mrm)).unwrap();
    std::fs::write(&paths[3], write_rewi(mrm)).unwrap();
    paths
}

/// The mutate-and-recheck golden test: rewriting a model file with
/// different content (same path!) must yield fresh results — never a
/// stale memoized `Sat` entry or a stale lumping certificate — while the
/// original handle keeps answering with the original model's results.
#[test]
fn mutated_model_files_never_serve_stale_results() {
    // A diamond with twin mid states: lumpable (so the certificate cache
    // is exercised), and the formula's probabilities shift when a rate
    // changes (so staleness would be visible).
    let build = |rate: f64| {
        let mut b = mrmc_ctmc::CtmcBuilder::new(4);
        b.transition(0, 1, 1.0)
            .transition(0, 2, 1.0)
            .transition(1, 3, rate)
            .transition(2, 3, rate)
            .transition(3, 0, 0.5);
        b.label(0, "start")
            .label(1, "mid")
            .label(2, "mid")
            .label(3, "goal");
        Mrm::without_rewards(b.build().unwrap())
    };
    let dir = std::env::temp_dir().join(format!("mrmc-conf-mutate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let formulas = ["S(> 0.1) (goal)", "P(> 0.2) [TT U[0,1] goal]"];

    let session = CheckSession::new();
    let [tra, lab, rewr, rewi] = write_model(&dir, &build(2.0));
    let original = session.load_files(&tra, &lab, &rewr, &rewi).unwrap();
    let options = CheckOptions::new();
    let before: Vec<CheckOutcome> = formulas
        .iter()
        .map(|f| session.check_str(&original, f, &options).unwrap())
        .collect();

    // Same paths, different rates.
    write_model(&dir, &build(0.25));
    let mutated = session.load_files(&tra, &lab, &rewr, &rewi).unwrap();
    assert_ne!(original.content_hash(), mutated.content_hash());
    assert_eq!(session.stats().models_loaded, 2);

    for (i, formula) in formulas.iter().enumerate() {
        let fresh = one_shot(&build(0.25), options, formula);
        let via_session = session.check_str(&mutated, formula, &options).unwrap();
        assert_eq!(
            fresh, via_session,
            "mutated model must be rechecked from scratch: `{formula}`"
        );
        assert_ne!(
            before[i].probabilities(),
            via_session.probabilities(),
            "the mutation must actually change `{formula}` (or this test checks nothing)"
        );
        // The original handle still answers with the original results.
        assert_eq!(
            before[i],
            session.check_str(&original, formula, &options).unwrap(),
            "original handle contaminated: `{formula}`"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Drive a full JSONL conversation against an in-process server and
/// return the response lines.
fn talk(server_addr: &str, requests: &[String]) -> Vec<String> {
    let stream = TcpStream::connect(server_addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    for r in requests {
        writer.write_all(r.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
    }
    writer.flush().unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    BufReader::new(stream)
        .lines()
        .collect::<Result<_, _>>()
        .expect("read responses")
}

/// Server-mode batches are bitwise-identical to one-shot runs: each wire
/// response embeds exactly the `--json` object a one-shot CLI run would
/// print for the same model, formula, and options, at 1 and 4 threads.
#[test]
fn wire_batches_embed_the_one_shot_json_objects() {
    let dir = std::env::temp_dir().join(format!("mrmc-conf-wire-{}", std::process::id()));
    for threads in [1usize, 4] {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: threads,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap().to_string();

        let mut requests = Vec::new();
        let mut expected: Vec<(String, String)> = Vec::new();
        for (name, mrm, formulas) in paper_models() {
            let model_dir = dir.join(format!("{name}-{threads}"));
            std::fs::create_dir_all(&model_dir).unwrap();
            let [tra, lab, rewr, rewi] = write_model(&model_dir, &mrm);
            requests.push(format!(
                "{{\"load\":{{\"model\":\"{name}\",\"tra\":\"{}\",\"lab\":\"{}\",\"rewr\":\"{}\",\"rewi\":\"{}\"}}}}",
                tra.display(),
                lab.display(),
                rewr.display(),
                rewi.display()
            ));
            let options = CheckOptions::new().with_threads(threads);
            for formula in formulas {
                let id = expected.len();
                requests.push(format!(
                    "{{\"check\":{{\"model\":\"{name}\",\"formula\":\"{formula}\",\"options\":{{\"threads\":{threads}}}}},\"id\":{id}}}"
                ));
                expected.push((
                    format!("\"id\":{id},"),
                    json_outcome(formula, &one_shot(&mrm, options, formula), None),
                ));
            }
        }
        // Scoped server thread: the scope joins it structurally after the
        // conversation completes (it exits on its own via `run(Some(1))`).
        let responses = std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.run(Some(1)));
            let responses = talk(&addr, &requests);
            handle.join().unwrap().unwrap();
            responses
        });

        let last = responses.last().expect("nonempty response stream");
        assert!(
            last.starts_with(&format!(
                "{{\"kind\":\"run_summary\",\"formulas\":{},\"failures\":0,\"elapsed_s\":",
                expected.len()
            )) && last.ends_with('}'),
            "malformed run_summary: {last}"
        );
        // Responses arrive in completion order; correlate by id. Each line
        // must END with the one-shot JSON object, byte for byte (only the
        // correlation prefix differs).
        for (id_tag, one_shot_line) in &expected {
            let line = responses
                .iter()
                .find(|l| l.contains(id_tag))
                .unwrap_or_else(|| panic!("no response for {id_tag}: {responses:#?}"));
            assert!(
                line.ends_with(&one_shot_line[1..]),
                "wire result differs from one-shot --json at {threads} threads:\n\
                 wire: {line}\none-shot: {one_shot_line}"
            );
            // And it is valid JSON as a whole.
            json::parse(line).unwrap_or_else(|e| panic!("bad response JSON: {e}\n{line}"));
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
