//! The model file formats end-to-end: write the evaluation models out,
//! load them back, and check formulas against the loaded copies.

use mrmc::{CheckOptions, ModelChecker};
use mrmc_models::tmr::{tmr, TmrConfig};
use mrmc_models::wavelan;
use mrmc_mrm::io::{self, ModelFiles};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mrmc-it-{}-{}", name, std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn wavelan_roundtrips_through_files() {
    let m = wavelan();
    let files = ModelFiles {
        tra: io::write_tra(&m),
        lab: io::write_lab(&m),
        rewr: io::write_rewr(&m),
        rewi: io::write_rewi(&m),
    };
    let back = files.assemble().unwrap();
    assert_eq!(back, m);
}

#[test]
fn tmr_loads_from_disk_and_checks() {
    let config = TmrConfig::classic();
    let m = tmr(&config);
    let dir = temp_dir("tmr");
    let paths: Vec<std::path::PathBuf> = ["m.tra", "m.lab", "m.rewr", "m.rewi"]
        .iter()
        .map(|n| dir.join(n))
        .collect();
    std::fs::write(&paths[0], io::write_tra(&m)).unwrap();
    std::fs::write(&paths[1], io::write_lab(&m)).unwrap();
    std::fs::write(&paths[2], io::write_rewr(&m)).unwrap();
    std::fs::write(&paths[3], io::write_rewi(&m)).unwrap();

    let loaded = io::load_model(&paths[0], &paths[1], &paths[2], &paths[3]).unwrap();
    assert_eq!(loaded, m);

    let checker = ModelChecker::new(loaded, CheckOptions::new());
    let out = checker
        .check_str("P(> 0.001) [Sup U[0,50][0,3000] failed]")
        .unwrap();
    let p = out.probabilities().unwrap();
    assert!((p[config.state_with_working(3)] - 0.00509).abs() < 2e-4);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hand_written_model_in_the_manual_format() {
    // The format exactly as the appendix presents it.
    let files = ModelFiles {
        tra: "STATES 3\nTRANSITIONS 3\n1 2 1.0\n2 3 2.0\n2 1 0.5\n".into(),
        lab: "#DECLARATION\na b\n#END\n1 a\n2 a\n3 b\n".into(),
        rewr: "1 2.0\n2 3.0\n".into(),
        rewi: "TRANSITIONS 1\n1 2 4.0\n".into(),
    };
    let m = files.assemble().unwrap();
    assert_eq!(m.num_states(), 3);
    assert_eq!(m.impulse_reward(0, 1), 4.0);

    let checker = ModelChecker::new(m, CheckOptions::new());
    // "a b-state can be reached with probability at least 0.3 by at most 3
    // time-units along a-states accumulating costs at most 23" — the
    // appendix's own example formula.
    let out = checker.check_str("P(>= 0.3) [a U [0,3][0,23] b]").unwrap();
    assert!(out.probabilities().is_some());
    assert_eq!(out.sat().len(), 3);
}

#[test]
fn malformed_files_are_rejected_with_positions() {
    let files = ModelFiles {
        tra: "STATES 2\nTRANSITIONS 1\n1 2 abc\n".into(),
        lab: String::new(),
        rewr: String::new(),
        rewi: String::new(),
    };
    let e = files.assemble().unwrap_err().to_string();
    assert!(e.contains("line 3"), "{e}");
    assert!(e.contains("abc"), "{e}");

    let files = ModelFiles {
        tra: "STATES 2\nTRANSITIONS 1\n1 2 1.0\n".into(),
        lab: "#DECLARATION\nup\n#END\n1 down\n".into(),
        rewr: String::new(),
        rewi: String::new(),
    };
    let e = files.assemble().unwrap_err().to_string();
    assert!(e.contains("down"), "{e}");
}

#[test]
fn semantic_model_errors_are_reported() {
    // Negative rate.
    let files = ModelFiles {
        tra: "STATES 2\nTRANSITIONS 1\n1 2 -1.0\n".into(),
        lab: String::new(),
        rewr: String::new(),
        rewi: String::new(),
    };
    assert!(files.assemble().is_err());

    // Impulse on an actual self-loop.
    let files = ModelFiles {
        tra: "STATES 1\nTRANSITIONS 1\n1 1 1.0\n".into(),
        lab: String::new(),
        rewr: String::new(),
        rewi: "TRANSITIONS 1\n1 1 5.0\n".into(),
    };
    let e = files.assemble().unwrap_err().to_string();
    assert!(e.contains("self-loop"), "{e}");
}
