//! Property tests for the lumping reduction: checking a formula on the
//! certified quotient ([`Reduction::Auto`], the default) must agree with
//! checking the full model ([`Reduction::Off`]) — identical three-valued
//! verdicts, and probabilities within the error budgets both runs report.
//! When no reduction applies, the two runs are the same computation and
//! must agree bitwise.

use mrmc::{CheckOptions, CheckOutcome, ModelChecker, Reduction};
use mrmc_models::cluster::{cluster, ClusterConfig};
use mrmc_models::random::{random_mrm, RandomMrmConfig};
use mrmc_models::{tmr, wavelan, TmrConfig};
use mrmc_mrm::Mrm;

/// The total error the outcome admits on state `s`'s probability: the
/// budget when the engine accounts for it, the raw truncation bound
/// otherwise, zero for exact computations.
fn slack(o: &CheckOutcome, s: usize) -> f64 {
    if let Some(b) = o.budgets() {
        b[s].total()
    } else if let Some(e) = o.error_bounds() {
        e[s]
    } else {
        0.0
    }
}

/// Check every formula with and without reduction and compare outcomes.
fn assert_reduction_agrees(name: &str, mrm: &Mrm, formulas: &[&str]) {
    let auto_checker = ModelChecker::new(mrm.clone(), CheckOptions::new());
    let full_checker = ModelChecker::new(
        mrm.clone(),
        CheckOptions::new().with_reduction(Reduction::Off),
    );
    for text in formulas {
        let auto = auto_checker
            .check_str(text)
            .unwrap_or_else(|e| panic!("{name} `{text}` (auto): {e}"));
        let full = full_checker
            .check_str(text)
            .unwrap_or_else(|e| panic!("{name} `{text}` (full): {e}"));
        assert_eq!(full.reduction(), None, "{name} `{text}`: Off still reduced");

        assert_eq!(
            auto.sat(),
            full.sat(),
            "{name} `{text}`: satisfying sets diverged"
        );
        assert_eq!(
            auto.unknown(),
            full.unknown(),
            "{name} `{text}`: undecided sets diverged"
        );

        match (auto.probabilities(), full.probabilities()) {
            (None, None) => {}
            (Some(a), Some(f)) => {
                assert_eq!(a.len(), f.len(), "{name} `{text}`: vector lengths");
                for s in 0..a.len() {
                    if auto.reduction().is_none() {
                        // Same computation on both sides: bitwise equal.
                        assert_eq!(
                            a[s].to_bits(),
                            f[s].to_bits(),
                            "{name} `{text}` state {s}: unreduced runs must be bitwise equal \
                             ({} vs {})",
                            a[s],
                            f[s]
                        );
                    } else {
                        let tol = slack(&auto, s) + slack(&full, s) + 1e-9;
                        assert!(
                            (a[s] - f[s]).abs() <= tol,
                            "{name} `{text}` state {s}: |{} - {}| > {tol}",
                            a[s],
                            f[s]
                        );
                    }
                }
            }
            _ => panic!("{name} `{text}`: probability availability diverged"),
        }
    }
}

#[test]
fn tmr_quotient_agrees_with_full_model() {
    let m = tmr(&TmrConfig::classic());
    // The pure-AP formulas lump 5 -> 2; the rate-observing ones do not
    // (classic TMR admits no rate-compatible merge), exercising both the
    // reduced and the bitwise-fallback paths.
    assert_reduction_agrees(
        "tmr",
        &m,
        &[
            "Sup",
            "Sup || failed",
            "allUp && Sup",
            "S(> 0.9) (Sup)",
            "P(< 0.05) [Sup U[0,2][0,10] failed]",
            "P(> 0.1) [X[0,1][0,5] Sup]",
        ],
    );
    // Sanity: the reduction really happens for a pure-AP formula.
    let o = ModelChecker::new(m, CheckOptions::new())
        .check_str("Sup")
        .unwrap();
    let info = o.reduction().expect("TMR lumps for a pure-AP formula");
    assert_eq!(info.original_states, 5);
    assert_eq!(info.reduced_states, 2);
}

#[test]
fn cluster_quotient_agrees_with_full_model() {
    let m = cluster(&ClusterConfig::new(4));
    assert_reduction_agrees(
        "cluster",
        &m,
        &[
            "premium",
            "!premium && minimum",
            "S(> 0.1) (minimum)",
            "P(>= 0.1) [TT U[0,1] down]",
        ],
    );
}

#[test]
fn wavelan_quotient_agrees_with_full_model() {
    let m = wavelan();
    assert_reduction_agrees(
        "wavelan",
        &m,
        &[
            "busy",
            "off || busy",
            "S(< 0.5) (busy)",
            "P(>= 0.0) [TT U[0,0.5][0,100] busy]",
        ],
    );
}

#[test]
fn random_models_quotient_agrees_with_full_model() {
    let config = RandomMrmConfig::default();
    for seed in 0..32 {
        let m = random_mrm(seed, &config);
        assert_reduction_agrees(
            &format!("random[{seed}]"),
            &m,
            &[
                "goal",
                "!goal",
                "S(> 0.1) (goal)",
                "P(> 0.1) [TT U[0,1][0,2] goal]",
            ],
        );
    }
}
