//! Three-engine agreement: uniformization, discretization, and Monte-Carlo
//! simulation evaluated on the same queries must coincide (within the
//! respective error bounds / standard errors). This extends the thesis'
//! two-engine correctness argument (§5.3.3) with a structurally unrelated
//! third estimator.

use mrmc::{CheckOptions, ModelChecker, UntilEngine};
use mrmc_models::queue::{queue, QueueConfig};
use mrmc_models::tmr::{tmr, TmrConfig};
use mrmc_numerics::discretization::{self, DiscretizationOptions};
use mrmc_numerics::monte_carlo::{estimate_until, SimulationOptions};
use mrmc_numerics::uniformization::{self, UniformOptions};

#[test]
fn three_engines_agree_on_the_tmr_dependability_query() {
    let config = TmrConfig::classic();
    let m = tmr(&config);
    let phi = m.labeling().states_with("Sup");
    let psi = m.labeling().states_with("failed");
    let start = config.state_with_working(3);
    let (t, r) = (100.0, 3000.0);

    let uni = uniformization::until_probability(
        &m,
        &phi,
        &psi,
        t,
        r,
        start,
        UniformOptions::new()
            .with_truncation(1e-11)
            .with_lambda(0.0505),
    )
    .unwrap();
    let disc = discretization::until_probability(
        &m,
        &phi,
        &psi,
        t,
        r,
        start,
        DiscretizationOptions::with_step(0.25),
    )
    .unwrap();
    let sim = estimate_until(
        &m,
        &phi,
        &psi,
        t,
        r,
        start,
        SimulationOptions::with_samples(200_000),
    )
    .unwrap();

    assert!(
        (uni.probability - disc.probability).abs() < 1e-3,
        "uniformization {} vs discretization {}",
        uni.probability,
        disc.probability
    );
    assert!(
        sim.is_consistent_with(uni.probability, 4.0),
        "simulation {} ± {} vs uniformization {}",
        sim.mean,
        sim.std_error,
        uni.probability
    );
}

#[test]
fn three_engines_agree_on_the_breakdown_queue() {
    let config = QueueConfig::new(4);
    let m = queue(&config);
    let phi = vec![true; m.num_states()];
    let psi = m.labeling().states_with("full");
    let start = config.up_state(0);
    let (t, r) = (3.0, 12.0);

    let uni = uniformization::until_probability(
        &m,
        &phi,
        &psi,
        t,
        r,
        start,
        UniformOptions::new().with_truncation(1e-9),
    )
    .unwrap();
    let disc = discretization::until_probability(
        &m,
        &phi,
        &psi,
        t,
        r,
        start,
        DiscretizationOptions::with_step(1.0 / 256.0),
    )
    .unwrap();
    let sim = estimate_until(
        &m,
        &phi,
        &psi,
        t,
        r,
        start,
        SimulationOptions::with_samples(120_000),
    )
    .unwrap();

    assert!(
        (uni.probability - disc.probability).abs() < 0.01 + uni.error_bound,
        "uniformization {} (±{}) vs discretization {}",
        uni.probability,
        uni.error_bound,
        disc.probability
    );
    assert!(
        sim.is_consistent_with(uni.probability, 4.0),
        "simulation {} ± {} vs uniformization {}",
        sim.mean,
        sim.std_error,
        uni.probability
    );
}

#[test]
fn simulation_engine_plugs_into_the_checker() {
    let config = QueueConfig::new(3);
    let m = queue(&config);
    let formula = "P(< 0.5) [TT U[0,3][0,12] full]";

    let exact = ModelChecker::new(m.clone(), CheckOptions::new())
        .check_str(formula)
        .unwrap();
    let simulated = ModelChecker::new(
        m,
        CheckOptions::new().with_engine(UntilEngine::simulation(60_000)),
    )
    .check_str(formula)
    .unwrap();

    // The probabilities agree within a few standard errors...
    let pe = exact.probabilities().unwrap();
    let ps = simulated.probabilities().unwrap();
    let se = simulated.error_bounds().unwrap();
    for s in 0..pe.len() {
        assert!(
            (pe[s] - ps[s]).abs() <= 5.0 * se[s] + 0.01,
            "state {s}: exact {} vs simulated {} ± {}",
            pe[s],
            ps[s],
            se[s]
        );
    }
    // ...and the formula is far enough from the bound that the verdicts
    // coincide.
    assert_eq!(exact.sat(), simulated.sat());
}
