//! Three-engine agreement: uniformization, discretization, and Monte-Carlo
//! simulation evaluated on the same queries must coincide (within the
//! respective error bounds / confidence intervals). This extends the
//! thesis' two-engine correctness argument (§5.3.3) with a structurally
//! unrelated third estimator, and exercises the adaptive tolerance driver
//! on the same corpus.
//!
//! All statistical checks run at a fixed seed and sample count, so the
//! suite is deterministic: a passing interval check passes forever.

use mrmc::{CheckOptions, ModelChecker, UntilEngine, Verdict};
use mrmc_models::cluster::{cluster, ClusterConfig};
use mrmc_models::queue::{queue, QueueConfig};
use mrmc_models::tmr::{tmr, TmrConfig};
use mrmc_numerics::adaptive::{self, AdaptiveOptions};
use mrmc_numerics::discretization::{self, DiscretizationOptions};
use mrmc_numerics::monte_carlo::{estimate_until, SimulationOptions};
use mrmc_numerics::uniformization::{self, UniformOptions};

/// The estimate's two confidence intervals must both cover `reference`:
/// the Wilson score interval at `z = 4` (≈ 6e-5 two-sided miss rate) and
/// the distribution-free Hoeffding interval at `δ = 1e-6`.
fn assert_covered(estimate: &mrmc_numerics::monte_carlo::Estimate, reference: f64, what: &str) {
    let (lo, hi) = estimate.wilson_interval(4.0);
    assert!(
        (lo..=hi).contains(&reference),
        "{what}: Wilson interval [{lo}, {hi}] misses the reference {reference}"
    );
    let radius = estimate.hoeffding_radius(1e-6);
    assert!(
        (estimate.mean - reference).abs() <= radius,
        "{what}: |{} - {reference}| > Hoeffding radius {radius}",
        estimate.mean
    );
}

#[test]
fn three_engines_agree_on_the_tmr_dependability_query() {
    let config = TmrConfig::classic();
    let m = tmr(&config);
    let phi = m.labeling().states_with("Sup");
    let psi = m.labeling().states_with("failed");
    let start = config.state_with_working(3);
    let (t, r) = (100.0, 3000.0);

    let uni = uniformization::until_probability(
        &m,
        &phi,
        &psi,
        t,
        r,
        start,
        UniformOptions::new()
            .with_truncation(1e-11)
            .with_lambda(0.0505),
    )
    .unwrap();
    let disc = discretization::until_probability(
        &m,
        &phi,
        &psi,
        t,
        r,
        start,
        DiscretizationOptions::with_step(0.25),
    )
    .unwrap();
    let sim = estimate_until(
        &m,
        &phi,
        &psi,
        t,
        r,
        start,
        SimulationOptions::with_samples(200_000).with_seed(42),
    )
    .unwrap();

    // The exact engines agree within the sum of their reported budgets.
    assert!(
        (uni.probability - disc.probability).abs() <= uni.budget.total() + disc.budget.total(),
        "uniformization {} (±{}) vs discretization {} (±{})",
        uni.probability,
        uni.budget.total(),
        disc.probability,
        disc.budget.total()
    );
    assert_covered(&sim, uni.probability, "TMR t=100");
}

#[test]
fn three_engines_agree_on_the_breakdown_queue() {
    let config = QueueConfig::new(4);
    let m = queue(&config);
    let phi = vec![true; m.num_states()];
    let psi = m.labeling().states_with("full");
    let start = config.up_state(0);
    let (t, r) = (3.0, 12.0);

    let uni = uniformization::until_probability(
        &m,
        &phi,
        &psi,
        t,
        r,
        start,
        UniformOptions::new().with_truncation(1e-9),
    )
    .unwrap();
    let disc = discretization::until_probability(
        &m,
        &phi,
        &psi,
        t,
        r,
        start,
        DiscretizationOptions::with_step(1.0 / 256.0),
    )
    .unwrap();
    let sim = estimate_until(
        &m,
        &phi,
        &psi,
        t,
        r,
        start,
        SimulationOptions::with_samples(120_000).with_seed(7),
    )
    .unwrap();

    assert!(
        (uni.probability - disc.probability).abs() <= uni.budget.total() + disc.budget.total(),
        "uniformization {} (±{}) vs discretization {} (±{})",
        uni.probability,
        uni.budget.total(),
        disc.probability,
        disc.budget.total()
    );
    assert_covered(&sim, uni.probability, "queue t=3");
}

/// The adaptive driver at ε ∈ {1e-3, 1e-6} on the cross-engine corpus:
/// it must converge (reported budget ≤ ε) and land within the combined
/// reported budgets of the independent discretization reference.
#[test]
fn adaptive_driver_converges_on_the_cross_engine_corpus() {
    // TMR dependability query.
    let config = TmrConfig::classic();
    let m = tmr(&config);
    let phi = m.labeling().states_with("Sup");
    let psi = m.labeling().states_with("failed");
    let start = config.state_with_working(3);
    let (t, r) = (100.0, 3000.0);
    let base = UniformOptions::new().with_lambda(0.0505);
    let reference = discretization::until_probability(
        &m,
        &phi,
        &psi,
        t,
        r,
        start,
        DiscretizationOptions::with_step(0.25),
    )
    .unwrap();
    for epsilon in [1e-3, 1e-6] {
        let a = adaptive::uniformization_until(
            &m,
            &phi,
            &psi,
            t,
            r,
            start,
            base,
            AdaptiveOptions::new(epsilon),
        )
        .unwrap();
        assert!(
            a.budget.total() <= epsilon,
            "ε = {epsilon}: achieved {}",
            a.budget.total()
        );
        let slack = a.budget.total() + reference.budget.total();
        assert!(
            (a.probability - reference.probability).abs() <= slack,
            "ε = {epsilon}: |{} - {}| > {slack}",
            a.probability,
            reference.probability
        );
    }

    // Workstation cluster degradation query (denser branching).
    let config = ClusterConfig::new(2);
    let m = cluster(&config);
    let phi = vec![true; m.num_states()];
    let premium = m.labeling().states_with("premium");
    let psi: Vec<bool> = premium.iter().map(|&p| !p).collect();
    let start = config.all_up();
    let (t, r) = (10.0, 25.0);
    let reference = discretization::until_probability(
        &m,
        &phi,
        &psi,
        t,
        r,
        start,
        DiscretizationOptions::with_step(1.0 / 16.0),
    )
    .unwrap();
    let a = adaptive::uniformization_until(
        &m,
        &phi,
        &psi,
        t,
        r,
        start,
        UniformOptions::new(),
        AdaptiveOptions::new(1e-6),
    )
    .unwrap();
    assert!(a.budget.total() <= 1e-6, "achieved {}", a.budget.total());
    let slack = a.budget.total() + reference.budget.total();
    assert!(
        (a.probability - reference.probability).abs() <= slack,
        "cluster: |{} - {}| > {slack}",
        a.probability,
        reference.probability
    );
}

/// The simulation engine reports a statistical error budget, and the
/// checker's verdicts become three-valued: wherever simulation commits to
/// a definite verdict it must agree with the exact engine, and anything
/// within the confidence radius of the bound is reported unknown rather
/// than guessed.
#[test]
fn simulation_engine_plugs_into_the_checker() {
    let config = QueueConfig::new(3);
    let m = queue(&config);
    let formula = "P(< 0.5) [TT U[0,3][0,12] full]";

    let exact = ModelChecker::new(m.clone(), CheckOptions::new())
        .check_str(formula)
        .unwrap();
    let simulated = ModelChecker::new(
        m,
        CheckOptions::new().with_engine(UntilEngine::simulation(60_000)),
    )
    .check_str(formula)
    .unwrap();

    // The probabilities agree within a few standard errors...
    let pe = exact.probabilities().unwrap();
    let ps = simulated.probabilities().unwrap();
    let se = simulated.error_bounds().unwrap();
    for s in 0..pe.len() {
        assert!(
            (pe[s] - ps[s]).abs() <= 5.0 * se[s] + 0.01,
            "state {s}: exact {} vs simulated {} ± {}",
            pe[s],
            ps[s],
            se[s]
        );
    }
    // ...the statistical component dominates the simulation budgets...
    let budgets = simulated.budgets().expect("simulation reports budgets");
    for (s, b) in budgets.iter().enumerate() {
        assert!(b.is_well_formed(), "state {s}");
        if ps[s] > 0.0 && ps[s] < 1.0 {
            assert_eq!(b.dominant().0, "statistical", "state {s}");
        }
    }
    // ...and every *definite* simulated verdict matches the exact engine;
    // near-bound states may only be reported unknown, never wrong.
    for s in 0..pe.len() {
        match simulated.verdict(s) {
            Verdict::Unknown => assert!(
                (pe[s] - 0.5).abs() <= budgets[s].total(),
                "state {s} reported unknown but the bound is not inside its budget"
            ),
            v => assert_eq!(v, exact.verdict(s), "state {s}"),
        }
    }
}
