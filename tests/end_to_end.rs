//! End-to-end checks of the `ModelChecker` on the evaluation models, using
//! the concrete CSRL syntax throughout.

use mrmc::{CheckError, CheckOptions, ModelChecker, UntilEngine};
use mrmc_models::tmr::{tmr, TmrConfig};
use mrmc_models::wavelan;

fn tmr3_checker() -> (ModelChecker, TmrConfig) {
    let config = TmrConfig::classic();
    let m = tmr(&config);
    (ModelChecker::new(m, CheckOptions::new()), config)
}

#[test]
fn tmr_dependability_formula_of_the_evaluation() {
    // P(>0.1)[Sup U[0,100][0,3000] failed]: at t = 100 the probability is
    // ≈ 0.0102 — no state satisfies the >0.1 bound.
    let (checker, config) = tmr3_checker();
    let out = checker
        .check_str("P(> 0.1) [Sup U[0,100][0,3000] failed]")
        .unwrap();
    let p = out.probabilities().unwrap();
    let full = config.state_with_working(3);
    assert!((p[full] - 0.0102).abs() < 5e-4, "P = {}", p[full]);
    assert!(!out.holds_in(full));
    // failed states satisfy the path formula immediately: P = 1 > 0.1.
    assert!(out.holds_in(config.vdown_state()));
}

#[test]
fn tmr_steady_state_availability() {
    let (checker, config) = tmr3_checker();
    // Long-run unavailability is tiny: S(< 0.01)(failed) holds everywhere.
    let out = checker.check_str("S(< 0.01) (failed)").unwrap();
    assert_eq!(out.count(), config.num_states());
    let p = out.probabilities().unwrap();
    assert!(p[config.state_with_working(3)] < 0.01);
}

#[test]
fn tmr_next_step_failure() {
    let (checker, config) = tmr3_checker();
    // From 2up, the next transition is a failure (to 1up or vdown) with
    // probability (0.0004 + 0.0001)/0.0505 ≈ 0.0099.
    let out = checker.check_str("P(< 0.05) [X failed]").unwrap();
    let p = out.probabilities().unwrap();
    let two_up = config.state_with_working(2);
    assert!((p[two_up] - 0.0005 / 0.0505).abs() < 1e-9);
    assert!(out.holds_in(two_up));
}

#[test]
fn engine_switch_changes_nothing_semantically() {
    let config = TmrConfig::classic();
    let formula = "P(> 0.005) [Sup U[0,50][0,3000] failed]";

    let uni = ModelChecker::new(tmr(&config), CheckOptions::new())
        .check_str(formula)
        .unwrap();
    let disc = ModelChecker::new(
        tmr(&config),
        CheckOptions::new().with_engine(UntilEngine::discretization(0.25)),
    )
    .check_str(formula)
    .unwrap();
    assert_eq!(uni.sat(), disc.sat());
    let (pu, pd) = (
        uni.probabilities().unwrap()[3],
        disc.probabilities().unwrap()[3],
    );
    assert!((pu - pd).abs() < 1e-4, "{pu} vs {pd}");
}

#[test]
fn wavelan_quickstart_formulas() {
    let checker = ModelChecker::new(wavelan(), CheckOptions::new());

    // Atomic and boolean structure.
    assert_eq!(checker.check_str("busy").unwrap().count(), 2);
    assert_eq!(checker.check_str("!busy && !off").unwrap().count(), 2);

    // Unbounded until: the chain is irreducible, so busy is reached
    // almost surely from everywhere.
    let out = checker.check_str("P(> 0.999) [TT U busy]").unwrap();
    assert_eq!(out.count(), 5);

    // Time-bounded until from idle.
    let out = checker.check_str("P(> 0.1) [idle U[0,2] busy]").unwrap();
    assert!(out.holds_in(2));

    // Next with time and reward bounds.
    let out = checker.check_str("P(> 0.1) [X[0,1][0,2000] busy]").unwrap();
    assert!(out.holds_in(2));
    assert!(!out.holds_in(0));
}

#[test]
fn error_reporting_is_actionable() {
    let checker = ModelChecker::new(wavelan(), CheckOptions::new());

    // The pre-flight lint intercepts unsupported bounds (F002) before any
    // engine starts.
    let e = checker
        .check_str("P(>= 0.5) [idle U[2,3][0,50] busy]")
        .unwrap_err();
    assert!(matches!(e, CheckError::Preflight(_)), "{e}");
    assert!(e.to_string().contains("F002"), "{e}");

    // With pre-flight disabled, the engine-level error surfaces instead.
    let raw = ModelChecker::new(wavelan(), CheckOptions::new().without_preflight());
    let e = raw
        .check_str("P(>= 0.5) [idle U[2,3][0,50] busy]")
        .unwrap_err();
    assert!(matches!(e, CheckError::UnsupportedBounds { .. }), "{e}");

    let e = checker.check_str("no_such_label").unwrap_err();
    assert!(matches!(e, CheckError::Preflight(_)), "{e}");
    assert!(e.to_string().contains("no_such_label"));

    let e = checker.check_str("P(>= 2) [TT U busy]").unwrap_err();
    assert!(matches!(e, CheckError::Parse(_)), "{e}");
}

#[test]
fn outcome_accessors_are_consistent() {
    let checker = ModelChecker::new(wavelan(), CheckOptions::new());
    let out = checker.check_str("S(> 0.0) (busy)").unwrap();
    assert_eq!(
        out.satisfying_states().count(),
        out.count(),
        "iterator and count agree"
    );
    let probs = out.probabilities().unwrap();
    assert_eq!(probs.len(), 5);
    for &p in probs {
        assert!((0.0..=1.0).contains(&p));
    }
}

#[test]
fn derived_eventually_and_globally_operators() {
    // Two-state chain: up --(0.5)--> down (absorbing).
    let mut b = mrmc_ctmc::CtmcBuilder::new(2);
    b.transition(0, 1, 0.5);
    b.label(0, "up").label(1, "down");
    let m = mrmc_mrm::Mrm::without_rewards(b.build().unwrap());
    let checker = ModelChecker::new(m, CheckOptions::new());

    // F: Pr(◇^{[0,2]} down) = 1 − e^{−1} ≈ 0.632.
    let out = checker.check_str("P(> 0.6) [F[0,2] down]").unwrap();
    let p = out.probabilities().unwrap();
    assert!((p[0] - (1.0 - (-1.0f64).exp())).abs() < 1e-9);
    assert!(out.holds_in(0));

    // G: Pr(□^{[0,2]} up) = e^{−1} ≈ 0.368 from the up state.
    // P(>= 0.3)[G[0,2] up] must hold in state 0 and fail in state 1.
    let out = checker.check_str("P(>= 0.3) [G[0,2] up]").unwrap();
    assert!(out.holds_in(0));
    assert!(!out.holds_in(1));
    // And with a bound above e^{−1} it must fail in state 0 too.
    let out = checker.check_str("P(>= 0.4) [G[0,2] up]").unwrap();
    assert!(!out.holds_in(0));
}

#[test]
fn interval_time_until_through_the_surface_syntax() {
    // The checker evaluates time-interval until exactly when the reward
    // bound is trivial (the two-phase decomposition).
    let mut b = mrmc_ctmc::CtmcBuilder::new(2);
    b.transition(0, 1, 2.0);
    b.label(0, "up").label(1, "failed");
    let m = mrmc_mrm::Mrm::without_rewards(b.build().unwrap());
    let checker = ModelChecker::new(m, CheckOptions::new());

    // Pr(tt U^{[0.5, 1]} failed) from up = 1 − e^{−2} ≈ 0.8647.
    let out = checker.check_str("P(> 0.8) [TT U[0.5,1] failed]").unwrap();
    assert!(out.holds_in(0));
    let p = out.probabilities().unwrap();
    assert!((p[0] - (1.0 - (-2.0f64).exp())).abs() < 1e-9);

    let out = checker.check_str("P(> 0.9) [TT U[0.5,1] failed]").unwrap();
    assert!(!out.holds_in(0));
}
