//! CSRL printer/parser round-trip over a structured corpus: for every
//! well-formed formula `f`, `parse(f.to_string()) == f`.
//!
//! Two layers: a fixed corpus of concrete-syntax strings covering the
//! interval edge cases of `X^I_J` and `U^I_J` and nested steady-state
//! operators, and a seeded sweep over the in-tree deterministic AST
//! generator (`mrmc_csrl::generator`), which replaced the external
//! `proptest` dependency in the hermetic offline build.

use mrmc_csrl::generator::{random_formula, random_path_formula};
use mrmc_csrl::{parse, CompareOp, Interval, StateFormula};
use mrmc_sparse::rng::Xoshiro256StarStar;

/// Parse → print → parse and require a fixed point of the AST.
fn assert_roundtrip(input: &str) {
    let first = parse(input).unwrap_or_else(|e| panic!("`{input}` fails to parse: {e}"));
    let printed = first.to_string();
    let second =
        parse(&printed).unwrap_or_else(|e| panic!("printed `{printed}` fails to parse: {e}"));
    assert_eq!(
        first, second,
        "`{input}` → `{printed}` is not a fixed point"
    );
}

#[test]
fn next_operator_with_interval_edge_cases() {
    for input in [
        // Both interval groups present, finite.
        "P(>= 0.3) [ X[0,3][0,23] a ]",
        // Point intervals: time and reward pinned to a single value.
        "P(< 0.5) [ X[2,2][0,0] b ]",
        // Infinite upper bounds spelled with `~`.
        "P(> 0.1) [ X[0,~][0,~] c ]",
        "P(<= 0.99) [ X[1.5,~][0.25,7] d ]",
        // Zero-width at zero.
        "P(>= 0) [ X[0,0][0,0] e ]",
        // Omitted interval groups default to [0, ~].
        "P(>= 0.3) [ X a ]",
        "P(>= 0.3) [ X[0,4] a ]",
    ] {
        assert_roundtrip(input);
    }
}

#[test]
fn until_operator_with_interval_edge_cases() {
    for input in [
        "P(>= 0.3) [ a U[0,3][0,23] b ]",
        // Fractional and point bounds.
        "P(< 0.25) [ a U[0.5,0.5][1.25,1.25] b ]",
        // Unbounded time with bounded reward and vice versa.
        "P(> 0.75) [ up U[0,~][0,100] down ]",
        "P(> 0.75) [ up U[0,24][0,~] down ]",
        // No interval groups at all: plain unbounded until.
        "P(>= 0.5) [ a U b ]",
        // Time group only.
        "P(>= 0.5) [ a U[3,17] b ]",
        // Compound operands around the until.
        "P(>= 0.5) [ (a && !b) U[0,8][0,4] (c || TT) ]",
    ] {
        assert_roundtrip(input);
    }
}

#[test]
fn nested_steady_state_and_boolean_structure() {
    for input in [
        "S(> 0.5) (up)",
        // Steady-state over a probabilistic until.
        "S(> 0.5) (P(>= 0.3) [ a U[0,3][0,23] b ])",
        // Steady nested inside steady.
        "S(<= 0.9) (S(> 0.1) (ok))",
        // Steady inside a boolean context, under negation and implication.
        "!S(> 0.5) (up) && (a => S(< 0.2) (b))",
        // Probability bound edge values.
        "S(>= 0) (a) || S(<= 1) (b)",
        // Derived temporal operators expand to until/next forms and must
        // round-trip through their expansion.
        "P(>= 0.2) [ F[0,10][0,5] goal ]",
        "P(<= 0.8) [ G[0,10] safe ]",
    ] {
        assert_roundtrip(input);
    }
}

#[test]
fn generated_state_formulas_roundtrip() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x0C41);
    for depth in 0..=4 {
        for _ in 0..128 {
            let f = random_formula(&mut rng, depth);
            let printed = f.to_string();
            let back =
                parse(&printed).unwrap_or_else(|e| panic!("`{printed}` fails to parse: {e}"));
            assert_eq!(f, back, "depth {depth}: `{printed}`");
        }
    }
}

#[test]
fn generated_path_formulas_roundtrip_under_prob() {
    // Path formulas only occur under a probability operator; wrap each
    // generated one in P(>= p) [...] and round-trip the whole formula.
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x0C42);
    for _ in 0..256 {
        let bound = rng.range_usize(101) as f64 / 100.0;
        let f = StateFormula::Prob {
            op: CompareOp::Ge,
            bound,
            path: Box::new(random_path_formula(&mut rng, 2)),
        };
        let printed = f.to_string();
        let back = parse(&printed).unwrap_or_else(|e| panic!("`{printed}` fails to parse: {e}"));
        assert_eq!(f, back, "`{printed}`");
    }
}

#[test]
fn printed_intervals_preserve_infinities_exactly() {
    // The `~` spelling must survive an AST-level round trip: construct the
    // intervals directly so no parser leniency can mask a printer bug.
    let f = StateFormula::prob_until(
        CompareOp::Lt,
        0.42,
        Interval::new(0.75, f64::INFINITY).unwrap(),
        Interval::new(0.0, 23.0).unwrap(),
        StateFormula::Ap("a".into()),
        StateFormula::Ap("b".into()),
    );
    let printed = f.to_string();
    assert!(printed.contains('~'), "`{printed}` lost the infinite bound");
    assert_eq!(parse(&printed).unwrap(), f);
}
